#ifndef HWF_MST_LOSER_TREE_H_
#define HWF_MST_LOSER_TREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/counters.h"

namespace hwf {

/// A tournament (loser) tree for stable k-way merging.
///
/// The classic Knuth/Graefe replacement-selection structure: one leaf per
/// source run, internal nodes store the *loser* of their match, the overall
/// winner sits at the root. Producing the next output element costs exactly
/// ⌈log₂ k⌉ matches along one leaf-to-root path — roughly half the
/// comparisons of a binary-heap merge (which sifts down AND up) — against a
/// flat, cache-resident array instead of a pointer-chased heap of pairs.
///
/// Ties break toward the lower source index, making the merge a stable sort
/// of the concatenated runs. This invariant is load-bearing for the merge
/// sort tree: every level must be a stable sort of level 0, and
/// MultiwaySelect chunk splits assume the same (key, child) order.
///
/// The current position of every source lives in a caller-owned `pos` array
/// so callers (cascading-pointer emission, payload gather) can observe the
/// offsets without a second copy. All internal storage is reused across
/// Init calls, so one tree instance per task amortizes allocation.
template <typename T, typename Less = std::less<T>>
class LoserTree {
 public:
  /// Prepares a tournament over `num_sources` runs. Run c spans
  /// data[c][pos[c], lens[c]); `pos` is advanced in place by Pop.
  void Init(const T* const* data, const size_t* lens, size_t num_sources,
            size_t* pos, Less less = Less()) {
    HWF_DCHECK(num_sources >= 1);
    data_ = data;
    lens_ = lens;
    pos_ = pos;
    less_.emplace(std::move(less));
    k_ = 1;
    while (k_ < num_sources) k_ <<= 1;
    loser_.resize(k_);
    key_.resize(k_);
    live_.assign(k_, 0);
    for (size_t c = 0; c < num_sources; ++c) {
      if (pos[c] < lens[c]) {
        key_[c] = data[c][pos[c]];
        live_[c] = 1;
      }
    }
    // Bottom-up tournament: winners_ holds the winner of every subtree
    // (leaves at [k_, 2k_)); each internal node records its loser.
    winners_.resize(2 * k_);
    for (size_t c = 0; c < k_; ++c) {
      winners_[k_ + c] = static_cast<uint32_t>(c);
    }
    for (size_t node = k_ - 1; node >= 1; --node) {
      const uint32_t a = winners_[2 * node];
      const uint32_t b = winners_[2 * node + 1];
      if (Beats(a, b)) {
        winners_[node] = a;
        loser_[node] = b;
      } else {
        winners_[node] = b;
        loser_[node] = a;
      }
    }
    winner_ = winners_[1];
  }

  /// True when every source is exhausted.
  bool Empty() const { return !live_[winner_]; }

  /// Source index of the current minimum.
  uint32_t TopSource() const { return winner_; }

  /// Key of the current minimum.
  const T& TopKey() const { return key_[winner_]; }

  /// Consumes the current minimum: advances its source and replays the one
  /// leaf-to-root path. ⌈log₂ k⌉ matches.
  void Pop() {
    const uint32_t c = winner_;
    const size_t next = ++pos_[c];
    if (next < lens_[c]) {
      key_[c] = data_[c][next];
    } else {
      live_[c] = 0;
    }
    uint32_t s = c;
    for (size_t node = (k_ + c) >> 1; node >= 1; node >>= 1) {
      const uint32_t t = loser_[node];
      if (Beats(t, s)) {
        loser_[node] = s;
        s = t;
      }
    }
    winner_ = s;
  }

 private:
  /// Strict "source a precedes source b" in the stable merge order:
  /// exhausted sources lose to everything, equal keys go to the lower index.
  bool Beats(uint32_t a, uint32_t b) const {
    if (!live_[a]) return false;
    if (!live_[b]) return true;
    if ((*less_)(key_[a], key_[b])) return true;
    if ((*less_)(key_[b], key_[a])) return false;
    return a < b;
  }

  const T* const* data_ = nullptr;
  const size_t* lens_ = nullptr;
  size_t* pos_ = nullptr;
  // Optional because comparators (capturing lambdas) need not be
  // default-constructible or assignable; re-emplaced on every Init.
  std::optional<Less> less_;
  size_t k_ = 0;                  // Leaf count, padded to a power of two.
  uint32_t winner_ = 0;
  std::vector<uint32_t> loser_;   // loser_[node], node in [1, k_).
  std::vector<uint32_t> winners_; // Init-time scratch.
  std::vector<T> key_;            // Current head key per source.
  std::vector<uint8_t> live_;     // 0 = exhausted (or padding).
};

/// Packed-key traits: integer key types whose (key, source-index) pair fits
/// a single wider unsigned integer. Packing makes the tournament comparison
/// ONE integer compare — and, crucially, lets the replay loop run on
/// conditional moves instead of data-dependent branches, which merging
/// makes inherently unpredictable (~50% taken). The low bits hold the
/// source index, so smaller packed value == earlier in the stable merge
/// order, preserving the tie-break invariant by construction.
template <typename Index>
struct PackedKeyTraits;

template <>
struct PackedKeyTraits<uint32_t> {
  using Packed = uint64_t;
  static constexpr int kShift = 32;
};

#if defined(__SIZEOF_INT128__)
template <>
struct PackedKeyTraits<uint64_t> {
  using Packed = unsigned __int128;
  static constexpr int kShift = 64;
};
#endif

template <typename Index, typename = void>
inline constexpr bool kHasPackedKey = false;
template <typename Index>
inline constexpr bool
    kHasPackedKey<Index, std::void_t<typename PackedKeyTraits<Index>::Packed>> =
        true;

/// Branchless loser tree over integer keys: nodes store packed
/// (key << kShift | source) VALUES, not indices, so a replay step is
/// load → compare → two conditional moves, with no indirection and no
/// unpredictable branch. Exhausted sources collapse to an all-ones
/// sentinel, which loses to every live entry (a live entry's low bits are
/// a real source index < 2^kShift - 1, so even a maximal key packs below
/// the sentinel).
///
/// Same external contract as LoserTree: stable tie-break by source index,
/// caller-owned `pos` cursors advanced by Pop.
template <typename Index>
class PackedLoserTree {
 public:
  using Packed = typename PackedKeyTraits<Index>::Packed;
  static constexpr int kShift = PackedKeyTraits<Index>::kShift;

  void Init(const Index* const* data, const size_t* lens, size_t num_sources,
            size_t* pos) {
    HWF_DCHECK(num_sources >= 1);
    data_ = data;
    lens_ = lens;
    pos_ = pos;
    k_ = 1;
    while (k_ < num_sources) k_ <<= 1;
    node_.resize(k_);
    winners_.resize(2 * k_);
    for (size_t c = 0; c < k_; ++c) {
      winners_[k_ + c] = c < num_sources && pos[c] < lens[c]
                             ? Pack(data[c][pos[c]], c)
                             : kSentinel;
    }
    for (size_t node = k_ - 1; node >= 1; --node) {
      const Packed a = winners_[2 * node];
      const Packed b = winners_[2 * node + 1];
      winners_[node] = a < b ? a : b;
      node_[node] = a < b ? b : a;
    }
    winner_ = winners_[1];
  }

  bool Empty() const { return winner_ == kSentinel; }

  uint32_t TopSource() const {
    return static_cast<uint32_t>(winner_ & kIdxMask);
  }

  Index TopKey() const { return static_cast<Index>(winner_ >> kShift); }

  void Pop() {
    const size_t c = TopSource();
    const size_t next = ++pos_[c];
    Packed cur = next < lens_[c] ? Pack(data_[c][next], c) : kSentinel;
    for (size_t node = (k_ + c) >> 1; node >= 1; node >>= 1) {
      const Packed other = node_[node];
      const Packed lo = other < cur ? other : cur;  // cmov, not a branch
      node_[node] = other < cur ? cur : other;
      cur = lo;
    }
    winner_ = cur;
  }

 private:
  static constexpr Packed kSentinel = ~Packed{0};
  static constexpr Packed kIdxMask = (Packed{1} << kShift) - 1;

  static Packed Pack(Index key, size_t source) {
    return (static_cast<Packed>(key) << kShift) | static_cast<Packed>(source);
  }

  const Index* const* data_ = nullptr;
  const size_t* lens_ = nullptr;
  size_t* pos_ = nullptr;
  size_t k_ = 0;
  Packed winner_ = 0;
  std::vector<Packed> node_;     // Loser values, nodes [1, k_).
  std::vector<Packed> winners_;  // Init-time scratch.
};

// ---------------------------------------------------------------------------
// Offset-value coding (Do & Graefe, "Robust and Efficient Sorting with
// Offset-Value Coding").
// ---------------------------------------------------------------------------
//
// Every element in a sorted run carries a code describing its first
// difference from its predecessor: (arity - offset, value at offset),
// packed into one 128-bit integer so that for two elements coded against a
// COMMON base, the smaller code identifies the smaller element. Most merge
// comparisons therefore resolve on a single integer compare; only
// equal-code matches fall back to comparing key words — and then only the
// words past the shared offset. The PackedLoserTree above is the
// degenerate single-word case of the same idea (key and tie-break in one
// integer); the coded tree below generalizes it to multi-word records.
//
// Code algebra (proofs in DESIGN.md §10). For a and b coded against the
// same base, with base <= a and base <= b:
//   - codes differ: the smaller code wins, and the loser's code is
//     ALREADY its code relative to the winner (no update needed).
//   - codes equal and non-zero: a and b agree with the base — hence with
//     each other — through the code's offset word; compare the remaining
//     words. The loser's new code is (first differing word, its value)
//     relative to the winner. Full equality ties break by source index
//     and the loser's code becomes 0 ("equal to base").
// A freshly computed code is only valid against the element it was
// computed against: replacement elements entering a tournament mid-merge
// MUST use their precomputed in-run code (relative to the run predecessor,
// which is exactly the element just emitted); recomputing "fresh" codes
// against -inf mid-merge gives wrong merge orders.

#if defined(__SIZEOF_INT128__)
#define HWF_HAS_OVC 1

/// 128-bit offset-value code: ((arity - offset) << 64) | value. Offset 0
/// relative to the conceptual -inf element yields the largest offset
/// component, code 0 means "equal to base".
using OvcCode = unsigned __int128;

/// Key-word access for offset-value coding. Types opt in either through
/// this specialization or by exposing `static constexpr size_t kOvcWords`
/// and `uint64_t OvcWord(size_t) const` members (picked up generically
/// below). The word sequence must order exactly like the comparator the
/// sort is invoked with: word 0 compares first, ties fall through to word
/// 1, and so on. Callers assert that contract by passing use_ovc = true.
template <typename T, typename = void>
struct OvcTraits;

template <typename T>
struct OvcTraits<T, std::void_t<decltype(T::kOvcWords)>> {
  static constexpr size_t kNumWords = T::kOvcWords;
  static uint64_t Word(const T& v, size_t w) { return v.OvcWord(w); }
};

/// (code, position) pairs — the preprocessing record sorts.
template <typename F, typename S>
struct OvcTraits<std::pair<F, S>,
                 std::enable_if_t<std::is_unsigned_v<F> &&
                                  std::is_unsigned_v<S> && sizeof(F) <= 8 &&
                                  sizeof(S) <= 8>> {
  static constexpr size_t kNumWords = 2;
  static uint64_t Word(const std::pair<F, S>& v, size_t w) {
    return w == 0 ? static_cast<uint64_t>(v.first)
                  : static_cast<uint64_t>(v.second);
  }
};

template <typename T, typename = void>
inline constexpr bool kHasOvcTraits = false;
template <typename T>
inline constexpr bool
    kHasOvcTraits<T, std::void_t<decltype(OvcTraits<T>::kNumWords)>> = true;

/// Code for an element whose first difference from its base is at word
/// `offset` with word value `value`.
template <typename T>
constexpr OvcCode OvcEncode(size_t offset, uint64_t value) {
  return (static_cast<OvcCode>(OvcTraits<T>::kNumWords - offset) << 64) |
         static_cast<OvcCode>(value);
}

/// Code of `v` relative to the conceptual -inf element (smaller than
/// everything): first difference at word 0. Valid as a common base for any
/// set of elements, so tournaments are initialized with it.
template <typename T>
OvcCode OvcInitialCode(const T& v) {
  return OvcEncode<T>(0, OvcTraits<T>::Word(v, 0));
}

/// Code of `v` relative to `base`; requires base <= v in the word order.
template <typename T>
OvcCode OvcCodeAgainst(const T& v, const T& base) {
  constexpr size_t kWords = OvcTraits<T>::kNumWords;
  for (size_t w = 0; w < kWords; ++w) {
    const uint64_t x = OvcTraits<T>::Word(v, w);
    if (x != OvcTraits<T>::Word(base, w)) return OvcEncode<T>(w, x);
  }
  return 0;
}

/// In-run codes of a sorted run: codes[0] relative to -inf, codes[i]
/// relative to data[i-1]. One linear pass, run by run, in parallel — this
/// is where merge rounds get their replacement codes from.
template <typename T>
void ComputeOvcRunCodes(const T* data, size_t n, OvcCode* codes) {
  if (n == 0) return;
  codes[0] = OvcInitialCode(data[0]);
  for (size_t i = 1; i < n; ++i) {
    codes[i] = OvcCodeAgainst(data[i], data[i - 1]);
  }
}

/// Comparison tallies of one merge, flushed to the global counters in one
/// add per merge (not per element).
struct OvcStats {
  uint64_t comparisons = 0;
  uint64_t code_resolved = 0;

  void Flush() {
    if (comparisons > 0) {
      obs::Add(obs::Counter::kSortComparisons, comparisons);
      obs::Add(obs::Counter::kSortOvcResolved, code_resolved);
    }
    comparisons = 0;
    code_resolved = 0;
  }
};

/// Three-way compare of two elements coded against a common base (-1: a
/// precedes, 1: b precedes, 0: equal). Implements the code algebra above:
/// the loser's code is rewritten in place to be relative to the winner.
/// On a full tie the caller picks the winner by source index and must set
/// the loser's code to 0.
template <typename T>
int OvcCompare(const T& a, OvcCode& ca, const T& b, OvcCode& cb,
               OvcStats& stats) {
  ++stats.comparisons;
  if (ca != cb) {
    ++stats.code_resolved;
    return ca < cb ? -1 : 1;
  }
  constexpr size_t kWords = OvcTraits<T>::kNumWords;
  // Equal codes (including 0): agreement through the offset word; compare
  // the rest. ca >> 64 is kWords - offset, so the first word to look at is
  // offset + 1; for code 0 that lands past the end and falls straight to
  // the tie return.
  for (size_t w = kWords - static_cast<size_t>(ca >> 64) + 1; w < kWords;
       ++w) {
    const uint64_t x = OvcTraits<T>::Word(a, w);
    const uint64_t y = OvcTraits<T>::Word(b, w);
    if (x == y) continue;
    if (x < y) {
      cb = OvcEncode<T>(w, y);
      return -1;
    }
    ca = OvcEncode<T>(w, x);
    return 1;
  }
  return 0;
}

/// Loser tree over offset-value-coded runs: same external contract as
/// LoserTree (stable tie-break by source index, caller-owned `pos`
/// cursors), but each head carries its code relative to the last emitted
/// element, so a tournament match is usually one 128-bit compare.
///
/// Init codes every head against -inf (the one base all runs share).
/// Pop's replacement head takes its PRECOMPUTED in-run code from
/// `in_codes` — its run predecessor is the element just emitted, which is
/// exactly the base every code in the tree is relative to. The loser
/// stored at each node is coded relative to the winner of that node's
/// subtree; since the emitted winner won every match on its leaf-to-root
/// path, all codes the replay touches share the emitted element as base.
template <typename T>
class OvcLoserTree {
 public:
  /// Run c spans data[c][pos[c], lens[c]); in_codes[c] aligns with data[c]
  /// and holds in-run codes (ComputeOvcRunCodes). Heads are re-coded
  /// against -inf here, so chunked merges starting at pos[c] > 0 are fine.
  void Init(const T* const* data, const size_t* lens, size_t num_sources,
            size_t* pos, const OvcCode* const* in_codes) {
    HWF_DCHECK(num_sources >= 1);
    data_ = data;
    lens_ = lens;
    pos_ = pos;
    in_codes_ = in_codes;
    k_ = 1;
    while (k_ < num_sources) k_ <<= 1;
    loser_.resize(k_);
    key_.resize(k_);
    code_.assign(k_, 0);
    live_.assign(k_, 0);
    for (size_t c = 0; c < num_sources; ++c) {
      if (pos[c] < lens[c]) {
        key_[c] = data[c][pos[c]];
        code_[c] = OvcInitialCode(key_[c]);
        live_[c] = 1;
      }
    }
    winners_.resize(2 * k_);
    for (size_t c = 0; c < k_; ++c) {
      winners_[k_ + c] = static_cast<uint32_t>(c);
    }
    for (size_t node = k_ - 1; node >= 1; --node) {
      const uint32_t a = winners_[2 * node];
      const uint32_t b = winners_[2 * node + 1];
      if (Beats(a, b)) {
        winners_[node] = a;
        loser_[node] = b;
      } else {
        winners_[node] = b;
        loser_[node] = a;
      }
    }
    winner_ = winners_[1];
  }

  bool Empty() const { return !live_[winner_]; }

  uint32_t TopSource() const { return winner_; }

  const T& TopKey() const { return key_[winner_]; }

  /// Code of the current minimum relative to the previously popped
  /// element — by construction the in-run code of the merged output, so a
  /// merge round emits the codes its successor round consumes for free.
  OvcCode TopCode() const { return code_[winner_]; }

  void Pop() {
    const uint32_t c = winner_;
    const size_t next = ++pos_[c];
    if (next < lens_[c]) {
      key_[c] = data_[c][next];
      code_[c] = in_codes_[c][next];
    } else {
      live_[c] = 0;
    }
    uint32_t s = c;
    for (size_t node = (k_ + c) >> 1; node >= 1; node >>= 1) {
      const uint32_t t = loser_[node];
      if (Beats(t, s)) {
        loser_[node] = s;
        s = t;
      }
    }
    winner_ = s;
  }

  /// Accumulated comparison tallies; callers flush once per merge.
  OvcStats& stats() { return stats_; }

 private:
  bool Beats(uint32_t a, uint32_t b) {
    if (!live_[a]) return false;
    if (!live_[b]) return true;
    const int cmp = OvcCompare(key_[a], code_[a], key_[b], code_[b], stats_);
    if (cmp != 0) return cmp < 0;
    // Full tie: the lower source wins (stability); the loser equals the
    // winner, i.e. code 0 against the new base.
    if (a < b) {
      code_[b] = 0;
      return true;
    }
    code_[a] = 0;
    return false;
  }

  const T* const* data_ = nullptr;
  const size_t* lens_ = nullptr;
  size_t* pos_ = nullptr;
  const OvcCode* const* in_codes_ = nullptr;
  size_t k_ = 0;
  uint32_t winner_ = 0;
  std::vector<uint32_t> loser_;
  std::vector<uint32_t> winners_;
  std::vector<T> key_;
  std::vector<OvcCode> code_;  // Head code per source, base = last emitted.
  std::vector<uint8_t> live_;
  OvcStats stats_;
};

/// Coded counterpart of LoserTreeMerge: merges `m` coded runs into `out`
/// and writes the outputs' in-run codes to `out_codes` (out_codes[0] is
/// relative to -inf — valid when the merge output starts a run; chunked
/// merges fix their first boundary up afterwards, see ParallelSortRange).
/// Output order is bit-identical to LoserTreeMerge under the natural word
/// order.
template <typename T>
void OvcLoserTreeMerge(OvcLoserTree<T>& tree, const T* const* data,
                       const size_t* lens, size_t m, size_t* pos,
                       const OvcCode* const* in_codes, T* out,
                       OvcCode* out_codes, size_t out_len) {
  if (m == 1) {
    std::copy(data[0] + pos[0], data[0] + pos[0] + out_len, out);
    std::copy(in_codes[0] + pos[0], in_codes[0] + pos[0] + out_len, out_codes);
    pos[0] += out_len;
    return;
  }
  if (m == 2) {
    const T* a = data[0];
    const T* b = data[1];
    const size_t la = lens[0];
    const size_t lb = lens[1];
    size_t i = pos[0];
    size_t j = pos[1];
    OvcStats& stats = tree.stats();
    // Heads coded against -inf; every later head uses its in-run code,
    // whose base is the element emitted right before it.
    OvcCode ca = i < la ? OvcInitialCode(a[i]) : OvcCode{0};
    OvcCode cb = j < lb ? OvcInitialCode(b[j]) : OvcCode{0};
    size_t o = 0;
    while (o < out_len && i < la && j < lb) {
      const int cmp = OvcCompare(a[i], ca, b[j], cb, stats);
      if (cmp <= 0) {
        out[o] = a[i];
        out_codes[o] = ca;
        if (cmp == 0) cb = 0;  // Tie: run 0 wins, b's head equals the base.
        ++i;
        if (i < la) ca = in_codes[0][i];
      } else {
        out[o] = b[j];
        out_codes[o] = cb;
        ++j;
        if (j < lb) cb = in_codes[1][j];
      }
      ++o;
    }
    while (o < out_len && i < la) {
      out[o] = a[i];
      out_codes[o] = ca;
      ++o;
      ++i;
      if (i < la) ca = in_codes[0][i];
    }
    while (o < out_len && j < lb) {
      out[o] = b[j];
      out_codes[o] = cb;
      ++o;
      ++j;
      if (j < lb) cb = in_codes[1][j];
    }
    pos[0] = i;
    pos[1] = j;
    stats.Flush();
    return;
  }
  tree.Init(data, lens, m, pos, in_codes);
  for (size_t o = 0; o < out_len; ++o) {
    out[o] = tree.TopKey();
    out_codes[o] = tree.TopCode();
    tree.Pop();
  }
  tree.stats().Flush();
}

#endif  // defined(__SIZEOF_INT128__)

#if !defined(HWF_HAS_OVC)
/// Without 128-bit integers the coded path is unavailable; sorts fall back
/// to the uncoded reference merge (use_ovc is ignored).
template <typename T, typename = void>
inline constexpr bool kHasOvcTraits = false;
#endif

/// Splits the stable (tie-by-source-index) k-way merge of `m` sorted runs at
/// global rank `k`, for an arbitrary strict weak order: on return,
/// offsets[c] is the number of elements run c contributes to the first k
/// merge outputs. Generic counterpart of internal_mst::MultiwaySelect
/// (which exploits integer keys); used to co-select chunk boundaries for
/// the parallel sort's multiway merge phase.
///
/// Quickselect over sorted runs: each round pivots on the median of the
/// widest candidate window and either accepts everything before the pivot
/// or discards everything from it on, halving that window. O(m² log² L)
/// comparisons — called once per output chunk, never per element.
template <typename T, typename Less>
void MultiwaySelectGeneric(const T* const* data, const size_t* lens, size_t m,
                           size_t k, Less less, size_t* offsets) {
  std::vector<size_t> acc(m, 0);  // Accepted prefix (among the k smallest).
  std::vector<size_t> hi(m);      // Exclusive candidate upper bound.
  for (size_t c = 0; c < m; ++c) hi[c] = lens[c];
  size_t need = k;
  while (need > 0) {
    // Pivot: middle of the widest candidate window.
    size_t p = m;
    size_t widest = 0;
    for (size_t c = 0; c < m; ++c) {
      const size_t w = hi[c] - acc[c];
      if (w > widest) {
        widest = w;
        p = c;
      }
    }
    HWF_DCHECK(p < m);  // k must not exceed the total candidate count.
    const size_t i = acc[p] + (widest - 1) / 2;
    const T& v = data[p][i];
    // Candidates strictly before position (v, p, i) in the merge order:
    // runs below p contribute elements <= v, runs above only elements < v.
    size_t total_before = 0;
    std::vector<size_t> before(m);
    for (size_t c = 0; c < m; ++c) {
      if (c == p) {
        before[c] = i - acc[c];
      } else {
        const T* b = data[c] + acc[c];
        const T* e = data[c] + hi[c];
        before[c] = static_cast<size_t>(
            (c < p ? std::upper_bound(b, e, v, less)
                   : std::lower_bound(b, e, v, less)) -
            b);
      }
      total_before += before[c];
    }
    if (total_before < need) {
      // Everything before the pivot, plus the pivot itself, is among the k
      // smallest.
      for (size_t c = 0; c < m; ++c) acc[c] += before[c];
      acc[p] += 1;
      need -= total_before + 1;
    } else {
      // The k smallest all precede the pivot: shrink every window.
      for (size_t c = 0; c < m; ++c) hi[c] = acc[c] + before[c];
    }
  }
  for (size_t c = 0; c < m; ++c) offsets[c] = acc[c];
}

/// Reusable per-task scratch for run merging: child run descriptors, the
/// per-child cursor array, and the loser tree's node storage. One instance
/// per worker task amortizes every allocation across the runs (or chunks)
/// that task merges.
template <typename Index, typename Payload>
struct MergeScratch {
  std::vector<const Index*> child_data;
  std::vector<size_t> child_lens;
  std::vector<const Payload*> child_payload;
  std::vector<size_t> offsets;
  std::vector<uint32_t> sort_idx;  // Level-1 payload sort permutation.
  // Packed (branchless) tournament whenever the key type supports it.
  std::conditional_t<kHasPackedKey<Index>, PackedLoserTree<Index>,
                     LoserTree<Index>>
      tree;
};

namespace internal_mst {

/// Branchless-core 2-way merge with the same contract as MergeRunLoserTree
/// below. The MST's last run of a level is frequently partial, so fanout-f
/// builds still see plenty of 2-child merges; a tournament over two runs
/// would waste its log factor on them.
template <typename Index, typename Payload, bool kHasPayload>
void MergeRun2Way(const Index* const* child_data, const size_t* child_lens,
                  Index* out, size_t out_len, Index* cascade_out,
                  size_t sampling, size_t fanout,
                  const Payload* const* child_payload, Payload* out_payload,
                  size_t out_offset, size_t* offsets) {
  const Index* a = child_data[0];
  const Index* b = child_data[1];
  const size_t la = child_lens[0];
  const size_t lb = child_lens[1];
  const Payload* pa = nullptr;
  const Payload* pb = nullptr;
  if constexpr (kHasPayload) {
    pa = child_payload[0];
    pb = child_payload[1];
  }
  size_t i = offsets[0];
  size_t j = offsets[1];
  size_t o = out_offset;
  const size_t end = out_offset + out_len;
  while (o < end) {
    size_t seg_end = end;
    if (cascade_out != nullptr) {
      if (o % sampling == 0) {
        Index* slot = cascade_out + (o / sampling) * fanout;
        slot[0] = static_cast<Index>(i);
        slot[1] = static_cast<Index>(j);
        for (size_t c = 2; c < fanout; ++c) slot[c] = 0;
      }
      seg_end = std::min(end, (o / sampling + 1) * sampling);
    }
    while (o < seg_end) {
      if (i < la && j < lb) {
        // Both runs live: branchless core. Each step consumes one element,
        // so min(remaining_a, remaining_b) steps are safe without bounds
        // checks. Ties take child 0 (stability).
        size_t steps = std::min(seg_end - o, std::min(la - i, lb - j));
        while (steps-- > 0) {
          const Index ka = a[i];
          const Index kb = b[j];
          const bool take_b = kb < ka;
          out[o] = take_b ? kb : ka;
          if constexpr (kHasPayload) {
            out_payload[o] = take_b ? pb[j] : pa[i];
          }
          i += !take_b;
          j += take_b;
          ++o;
        }
      } else if (i < la) {
        const size_t steps = std::min(seg_end - o, la - i);
        std::copy(a + i, a + i + steps, out + o);
        if constexpr (kHasPayload) {
          std::copy(pa + i, pa + i + steps, out_payload + o);
        }
        i += steps;
        o += steps;
      } else {
        const size_t steps = std::min(seg_end - o, lb - j);
        std::copy(b + j, b + j + steps, out + o);
        if constexpr (kHasPayload) {
          std::copy(pb + j, pb + j + steps, out_payload + o);
        }
        j += steps;
        o += steps;
      }
    }
  }
  offsets[0] = i;
  offsets[1] = j;
}

/// Loser-tree k-way merge of `num_children` sorted runs into `out`, with
/// the merge-sort-tree contract of MergeRunHeap (merge_sort_tree.h): stable
/// tie-break by child index, cascading-pointer emission every `sampling`
/// output positions, optional payload gather, and chunked merging via
/// `out_offset`/`start_offsets` for the §5.2 upper-level strategy.
template <typename Index, typename Payload, bool kHasPayload>
void MergeRunLoserTree(MergeScratch<Index, Payload>& scratch,
                       const Index* const* child_data, const size_t* child_lens,
                       size_t num_children, Index* out, size_t out_len,
                       Index* cascade_out, size_t sampling, size_t fanout,
                       const Payload* const* child_payload,
                       Payload* out_payload, size_t out_offset = 0,
                       const size_t* start_offsets = nullptr) {
  std::vector<size_t>& offsets = scratch.offsets;
  offsets.assign(num_children, 0);
  if (start_offsets != nullptr) {
    offsets.assign(start_offsets, start_offsets + num_children);
  }
  if (num_children == 1) {
    // Degenerate tail run: a straight copy (cascade offsets trivially 0).
    const size_t i = offsets[0];
    std::copy(child_data[0] + i, child_data[0] + i + out_len,
              out + out_offset);
    if constexpr (kHasPayload) {
      std::copy(child_payload[0] + i, child_payload[0] + i + out_len,
                out_payload + out_offset);
    }
    if (cascade_out != nullptr) {
      for (size_t o = out_offset; o < out_offset + out_len; ++o) {
        if (o % sampling != 0) continue;
        Index* slot = cascade_out + (o / sampling) * fanout;
        slot[0] = static_cast<Index>(offsets[0] + (o - out_offset));
        for (size_t c = 1; c < fanout; ++c) slot[c] = 0;
      }
    }
    return;
  }
  if (num_children == 2) {
    MergeRun2Way<Index, Payload, kHasPayload>(
        child_data, child_lens, out, out_len, cascade_out, sampling, fanout,
        child_payload, out_payload, out_offset, offsets.data());
    return;
  }
  auto& tree = scratch.tree;
  tree.Init(child_data, child_lens, num_children, offsets.data());
  size_t o = out_offset;
  const size_t end = out_offset + out_len;
  while (o < end) {
    size_t seg_end = end;
    if (cascade_out != nullptr) {
      if (o % sampling == 0) {
        Index* slot = cascade_out + (o / sampling) * fanout;
        for (size_t c = 0; c < num_children; ++c) {
          slot[c] = static_cast<Index>(offsets[c]);
        }
        for (size_t c = num_children; c < fanout; ++c) slot[c] = 0;
      }
      seg_end = std::min(end, (o / sampling + 1) * sampling);
    }
    for (; o < seg_end; ++o) {
      const uint32_t c = tree.TopSource();
      out[o] = tree.TopKey();
      if constexpr (kHasPayload) {
        out_payload[o] = child_payload[c][offsets[c]];
      }
      tree.Pop();
    }
  }
}

}  // namespace internal_mst

/// Merges `m` sorted runs into `out` with a loser tree (no cascade/payload
/// machinery): the parallel sort's multiway merge kernel. `pos` holds the
/// per-run start offsets (e.g. from MultiwaySelectGeneric) and is advanced
/// past the consumed elements. Ties break toward the lower run index, so
/// the output matches a left-biased pairwise merge tree bit for bit.
template <typename T, typename Less>
void LoserTreeMerge(LoserTree<T, Less>& tree, const T* const* data,
                    const size_t* lens, size_t m, size_t* pos, T* out,
                    size_t out_len, Less less) {
  if (m == 1) {
    std::copy(data[0] + pos[0], data[0] + pos[0] + out_len, out);
    pos[0] += out_len;
    return;
  }
  if (m == 2) {
    const T* a = data[0];
    const T* b = data[1];
    size_t i = pos[0];
    size_t j = pos[1];
    size_t o = 0;
    while (o < out_len && i < lens[0] && j < lens[1]) {
      size_t steps = std::min(out_len - o, std::min(lens[0] - i, lens[1] - j));
      while (steps-- > 0) {
        const bool take_b = less(b[j], a[i]);
        out[o++] = take_b ? b[j] : a[i];
        i += !take_b;
        j += take_b;
      }
    }
    if (o < out_len) {
      if (i < lens[0]) {
        std::copy(a + i, a + i + (out_len - o), out + o);
        i += out_len - o;
      } else {
        std::copy(b + j, b + j + (out_len - o), out + o);
        j += out_len - o;
      }
    }
    pos[0] = i;
    pos[1] = j;
    return;
  }
  tree.Init(data, lens, m, pos, less);
  for (size_t o = 0; o < out_len; ++o) {
    out[o] = tree.TopKey();
    tree.Pop();
  }
}

}  // namespace hwf

#endif  // HWF_MST_LOSER_TREE_H_
