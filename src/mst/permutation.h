#ifndef HWF_MST_PERMUTATION_H_
#define HWF_MST_PERMUTATION_H_

#include <cstddef>
#include <vector>

#include "common/macros.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// Computes the permutation array of §4.5 (Fig. 6): perm[j] is the position
/// (in frame order, 0..n) of the j-th smallest element under `less`, with
/// ties broken by position. `less(a, b)` compares two positions by the
/// window function's ORDER BY criterion.
///
/// The merge sort tree built over this array answers "i-th smallest within
/// a frame" queries for percentiles and value functions.
template <typename Index, typename Less>
std::vector<Index> ComputePermutation(size_t n, Less less,
                                      ThreadPool& pool = ThreadPool::Default()) {
  std::vector<Index> perm(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) perm[i] = static_cast<Index>(i);
      },
      pool);
  ParallelSort(
      perm,
      [&less](Index a, Index b) {
        if (less(static_cast<size_t>(a), static_cast<size_t>(b))) return true;
        if (less(static_cast<size_t>(b), static_cast<size_t>(a))) return false;
        return a < b;  // Position tiebreak: strict total order.
      },
      pool);
  return perm;
}

/// Computes dense value codes (paper Fig. 8): codes[i] is the 0-based dense
/// rank of position i under `less`; equal values share a code. Used as the
/// integer key domain for framed RANK / CUME_DIST (§4.4, §5.1).
/// `*num_distinct` receives the number of distinct codes.
template <typename Index, typename Less>
std::vector<Index> ComputeDenseCodes(size_t n, Less less, size_t* num_distinct,
                                     ThreadPool& pool = ThreadPool::Default()) {
  std::vector<Index> perm = ComputePermutation<Index>(n, less, pool);
  std::vector<Index> codes(n);
  Index next_code = 0;
  for (size_t j = 0; j < n; ++j) {
    if (j > 0) {
      const size_t prev = static_cast<size_t>(perm[j - 1]);
      const size_t cur = static_cast<size_t>(perm[j]);
      // New code whenever the value strictly increases.
      if (less(prev, cur)) ++next_code;
    }
    codes[perm[j]] = next_code;
  }
  if (num_distinct != nullptr) {
    *num_distinct = n == 0 ? 0 : static_cast<size_t>(next_code) + 1;
  }
  return codes;
}

/// Computes unique codes: codes[i] is the 0-based rank of position i under
/// `less` with ties broken by position, i.e. the inverse of the permutation
/// array. All codes are distinct, which is the disambiguation the paper
/// uses for ROW_NUMBER (§4.4).
template <typename Index, typename Less>
std::vector<Index> ComputeUniqueCodes(size_t n, Less less,
                                      ThreadPool& pool = ThreadPool::Default()) {
  std::vector<Index> perm = ComputePermutation<Index>(n, less, pool);
  std::vector<Index> codes(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t j = lo; j < hi; ++j) {
          codes[perm[j]] = static_cast<Index>(j);
        }
      },
      pool);
  return codes;
}

}  // namespace hwf

#endif  // HWF_MST_PERMUTATION_H_
