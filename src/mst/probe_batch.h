#ifndef HWF_MST_PROBE_BATCH_H_
#define HWF_MST_PROBE_BATCH_H_

#ifndef HWF_MST_MERGE_SORT_TREE_H_
#error "probe_batch.h is tail-included by mst/merge_sort_tree.h; include that"
#endif

/// \file probe_batch.h
/// Batched, prefetch-pipelined probe kernel for the merge sort tree.
///
/// The scalar probe walks one row at a time through ~log_f(n) tree levels,
/// and every level starts with loads (cascade pointers, run data) whose
/// addresses depend on the previous level's result — a dependent-miss chain
/// the core cannot overlap. This kernel keeps a group of queries in flight
/// and advances all of them one level per round (group prefetching /
/// AMAC-style state machines): when a query finishes its work at level ℓ it
/// immediately computes its level ℓ-1 touch points and issues software
/// prefetches for them, then yields to the next query in the group. By the
/// time the round returns to it, the lines are (being) loaded. Queries that
/// retire are backfilled from the batch, so the group stays full until the
/// batch drains.
///
/// Results are bit-identical to the scalar path: the same bisection
/// positions (via the shared branchless lower bound), the same descent
/// decisions, and — for VisitCountCoverBatch — the same per-query piece
/// order the scalar DFS emits, which the annotated tree's floating-point
/// merges rely on.
///
/// Spilled levels cooperate: the prefetch pass warms each query's spill
/// pages through the thread-local MRU cache (SpillableVector::
/// PrefetchElement), so a group resolves its page set per level in one pass
/// instead of faulting per query mid-computation.

namespace hwf {
namespace internal_mst {

/// Per-call counter deltas, flushed once per batch instead of per probe.
struct ProbeBatchStats {
  uint64_t cascade_lookups = 0;
  uint64_t fallbacks = 0;
  uint64_t rounds = 0;
  uint64_t prefetches = 0;

  void Flush(size_t num_queries) const {
    obs::Add(obs::Counter::kMstProbeBatches);
    obs::Add(obs::Counter::kMstProbeBatchQueries, num_queries);
    obs::Add(obs::Counter::kMstProbeBatchRounds, rounds);
    obs::Add(obs::Counter::kMstProbePrefetches, prefetches);
    if (cascade_lookups > 0) {
      obs::Add(obs::Counter::kMstCascadeLookups, cascade_lookups);
    }
    if (fallbacks > 0) {
      obs::Add(obs::Counter::kMstBinarySearchFallbacks, fallbacks);
    }
  }
};

/// How many children ahead the descent loop decodes cascade windows and
/// prefetches their data before searching them (ring capacity must exceed
/// the distance). Four children ≈ 4–8 dependent window searches of slack,
/// enough to cover an L2 hit and most of an L3 hit at default f = k = 32.
inline constexpr size_t kChildLookahead = 4;
inline constexpr size_t kChildRing = 8;

/// Cover-piece consumer that just sums counts (CountLess semantics; the
/// emission order is irrelevant for integer sums).
struct CountCoverSum {
  size_t* out;  // one accumulator per query, pre-zeroed

  void Emit(size_t /*slot*/, size_t query, size_t /*level*/,
            size_t /*run_begin*/, size_t count, bool /*lo_side*/) {
    out[query] += count;
  }
  void EndLoRound(size_t /*slot*/) {}
  void Retire(size_t /*slot*/, size_t /*query*/) {}
};

/// Cover-piece consumer that buffers each query's pieces and replays them
/// in exactly the scalar VisitCountCover order when the query retires.
///
/// The scalar DFS emits, for a query whose boundaries split at some level:
/// the lower-boundary subtree bottom-up-by-round pieces first, then the
/// split level's fully-covered middle children, then the upper-boundary
/// subtree top-down. The kernel produces the same pieces level-by-level, so
/// the lower-boundary pieces arrive in reverse round order — they are
/// buffered as one segment per round and replayed with the segment order
/// reversed; everything else already arrives in scalar order and is
/// appended to a second buffer.
template <typename Visitor>
struct OrderedCoverReplay {
  struct Piece {
    size_t level;
    size_t run_begin;
    size_t count;
  };
  struct SlotBuffer {
    std::vector<Piece> lo;
    std::vector<size_t> lo_segment_end;
    std::vector<Piece> main;
  };

  explicit OrderedCoverReplay(Visitor* v) : visit(v) {}

  SlotBuffer& Buffer(size_t slot) {
    if (slot >= buffers.size()) buffers.resize(slot + 1);
    return buffers[slot];
  }

  void Emit(size_t slot, size_t /*query*/, size_t level, size_t run_begin,
            size_t count, bool lo_side) {
    SlotBuffer& buf = Buffer(slot);
    (lo_side ? buf.lo : buf.main).push_back(Piece{level, run_begin, count});
  }

  void EndLoRound(size_t slot) {
    SlotBuffer& buf = Buffer(slot);
    const size_t prev_end =
        buf.lo_segment_end.empty() ? 0 : buf.lo_segment_end.back();
    if (buf.lo.size() > prev_end) buf.lo_segment_end.push_back(buf.lo.size());
  }

  void Retire(size_t slot, size_t query) {
    SlotBuffer& buf = Buffer(slot);
    for (size_t seg = buf.lo_segment_end.size(); seg-- > 0;) {
      const size_t begin = seg == 0 ? 0 : buf.lo_segment_end[seg - 1];
      const size_t end = buf.lo_segment_end[seg];
      for (size_t i = begin; i < end; ++i) {
        const Piece& p = buf.lo[i];
        (*visit)(query, p.level, p.run_begin, p.count);
      }
    }
    for (const Piece& p : buf.main) {
      (*visit)(query, p.level, p.run_begin, p.count);
    }
    buf.lo.clear();
    buf.lo_segment_end.clear();
    buf.main.clear();
  }

  Visitor* visit;
  std::vector<SlotBuffer> buffers;
};

}  // namespace internal_mst

// ---------------------------------------------------------------------------
// SelectBatch.
// ---------------------------------------------------------------------------

template <typename Index>
void MergeSortTree<Index>::SelectBatch(
    std::span<const KeyRange<Index>> range_pool,
    std::span<const SelectQuery> queries, size_t group_size,
    size_t* out) const {
  if (queries.empty()) return;
  HWF_CHECK(n_ > 0);
  if (n_ == 1) {
    // Matches the scalar early-out: position 0 is the only candidate.
    for (size_t q = 0; q < queries.size(); ++q) out[q] = 0;
    return;
  }
  if (group_size == 0) group_size = 1;

  internal_mst::ProbeBatchStats stats;
  const Index* top = levels_.back().data.ResidentData();
  const size_t k = opts_.sampling;
  const size_t f = opts_.fanout;
  const size_t top_level = levels_.size() - 1;
  constexpr size_t kMaxBounds = 2 * kSelectMaxRanges;

  enum Phase : uint8_t { kFree, kTopBisect, kDescend };
  struct Slot {
    Phase phase = kFree;
    size_t query = 0;
    size_t num_bounds = 0;  // 2 per range: [2r] = lo key, [2r+1] = hi key
    size_t rank = 0;
    size_t level = 0;
    size_t run_begin = 0;
    size_t run_len_actual = 0;
    bool casc_valid = false;
    Index key[kMaxBounds];
    size_t pos[kMaxBounds];        // boundary positions within current run
    size_t bis_base[kMaxBounds];   // top-run bisection state
    size_t bis_len[kMaxBounds];
    size_t casc_base[kMaxBounds];  // cascade slot base per boundary
    bool casc_next[kMaxBounds];    // a following sample bounds the window
  };

  const size_t num_slots = std::min(group_size, queries.size());
  std::vector<Slot> slots(num_slots);
  size_t next_query = 0;
  size_t active = 0;

  // Computes the cascade sample bases of the slot's current level and
  // prefetches next round's touch points: the cascade window rows for
  // levels >= 2, the child run elements for level 1.
  auto enter_level = [&](Slot& slot) {
    if (slot.level == 1) {
      const mem::SpillableVector<Index>& data0 = levels_[0].data;
      const size_t stride = 64 / sizeof(Index);
      for (size_t i = 0; i < slot.run_len_actual; i += stride) {
        data0.PrefetchElement(slot.run_begin + i);
        ++stats.prefetches;
      }
      data0.PrefetchElement(slot.run_begin + slot.run_len_actual - 1);
      ++stats.prefetches;
      slot.casc_valid = false;
      return;
    }
    const Level& lvl = levels_[slot.level];
    slot.casc_valid = !lvl.cascade.empty();
    if (!slot.casc_valid) return;
    const size_t run_index = slot.run_begin / lvl.run_len;
    const size_t num_samples = SamplesForLen(slot.run_len_actual);
    for (size_t b = 0; b < slot.num_bounds; ++b) {
      const size_t s = std::min(slot.pos[b] / k, num_samples - 1);
      slot.casc_base[b] = (run_index * lvl.samples_per_full_run + s) * f;
      slot.casc_next[b] = s + 1 < num_samples;
      lvl.cascade.PrefetchElement(slot.casc_base[b]);
      lvl.cascade.PrefetchElement(slot.casc_base[b] + f - 1);
      stats.prefetches += 2;
      if (slot.casc_next[b]) {
        lvl.cascade.PrefetchElement(slot.casc_base[b] + f);
        lvl.cascade.PrefetchElement(slot.casc_base[b] + 2 * f - 1);
        stats.prefetches += 2;
      }
    }
  };

  auto refill = [&](Slot& slot) -> bool {
    if (next_query >= queries.size()) {
      slot.phase = kFree;
      return false;
    }
    const size_t q = next_query++;
    const SelectQuery& query = queries[q];
    HWF_CHECK(query.num_ranges <= kSelectMaxRanges);
    slot.phase = kTopBisect;
    slot.query = q;
    slot.num_bounds = 2 * query.num_ranges;
    slot.rank = query.rank;
    for (size_t r = 0; r < query.num_ranges; ++r) {
      const KeyRange<Index>& range = range_pool[query.range_begin + r];
      slot.key[2 * r] = range.lo;
      slot.key[2 * r + 1] = range.hi;
    }
    for (size_t b = 0; b < slot.num_bounds; ++b) {
      slot.bis_base[b] = 0;
      slot.bis_len[b] = n_;
    }
    // Every boundary's first probe is the same top-run element.
    HWF_PREFETCH(top + n_ / 2 - 1);
    ++stats.prefetches;
    return true;
  };

  // One branchless bisection step per boundary per round, prefetching each
  // boundary's next probe. The top run is always resident.
  auto step_top_bisect = [&](Slot& slot) {
    bool all_done = true;
    for (size_t b = 0; b < slot.num_bounds; ++b) {
      const size_t len = slot.bis_len[b];
      if (len <= 1) continue;
      const size_t half = len / 2;
      const size_t base = slot.bis_base[b];
      slot.bis_base[b] = (top[base + half - 1] < slot.key[b]) ? base + half
                                                              : base;
      slot.bis_len[b] = len - half;
      if (slot.bis_len[b] > 1) {
        HWF_PREFETCH(top + slot.bis_base[b] + slot.bis_len[b] / 2 - 1);
        ++stats.prefetches;
        all_done = false;
      }
    }
    if (!all_done) return;
    for (size_t b = 0; b < slot.num_bounds; ++b) {
      slot.pos[b] =
          slot.bis_base[b] + ((top[slot.bis_base[b]] < slot.key[b]) ? 1 : 0);
    }
    slot.phase = kDescend;
    slot.level = top_level;
    slot.run_begin = 0;
    slot.run_len_actual = n_;
    enter_level(slot);
  };

  // Advances the descent by one level: scans the children of the current
  // run, decoding cascade windows and prefetching their data a few children
  // ahead of the searches. Retires the slot when the element is found.
  auto step_descend = [&](Slot& slot, size_t slot_index) {
    using internal_mst::kChildLookahead;
    using internal_mst::kChildRing;
    const size_t level = slot.level;
    const Level& child_lvl = levels_[level - 1];
    const size_t child_run_len = child_lvl.run_len;
    const size_t run_end = slot.run_begin + slot.run_len_actual;
    const size_t num_children =
        (slot.run_len_actual + child_run_len - 1) / child_run_len;

    if (level == 1) {
      // Children are single elements of level 0 (prefetched last round).
      const mem::SpillableVector<Index>& data0 = levels_[0].data;
      for (size_t c = 0; c < num_children; ++c) {
        const Index key = data0.Get(slot.run_begin + c);
        size_t count = 0;
        for (size_t b = 0; b < slot.num_bounds; b += 2) {
          count += (key >= slot.key[b] && key < slot.key[b + 1]) ? 1 : 0;
        }
        if (slot.rank < count) {
          out[slot.query] = slot.run_begin + c;
          if (refill(slot)) return;
          --active;
          return;
        }
        slot.rank -= count;
      }
      HWF_CHECK_MSG(false, "MergeSortTree::Select: i out of range");
    }

    const Level& lvl = levels_[level];
    // Ring of decoded per-boundary windows, kChildLookahead children ahead.
    size_t window_lo[kChildRing][kMaxBounds];
    size_t window_hi[kChildRing][kMaxBounds];
    size_t decoded = 0;
    auto decode_child = [&](size_t c) {
      const size_t cb = slot.run_begin + c * child_run_len;
      const size_t ce = std::min(run_end, cb + child_run_len);
      const size_t child_len = ce - cb;
      size_t* wlo = window_lo[c % kChildRing];
      size_t* whi = window_hi[c % kChildRing];
      for (size_t b = 0; b < slot.num_bounds; ++b) {
        size_t lo = 0;
        size_t hi = child_len;
        if (slot.casc_valid) {
          lo = static_cast<size_t>(lvl.cascade.Get(slot.casc_base[b] + c));
          if (slot.casc_next[b]) {
            hi = std::min<size_t>(
                static_cast<size_t>(lvl.cascade.Get(slot.casc_base[b] + f + c)),
                child_len);
          }
        }
        wlo[b] = lo;
        whi[b] = hi;
        if (lo < hi) {
          // The bisection's first probe plus the window start line.
          child_lvl.data.PrefetchElement(cb + lo + (hi - lo) / 2);
          child_lvl.data.PrefetchElement(cb + lo);
          stats.prefetches += 2;
        }
      }
    };

    size_t child_pos[kMaxBounds];
    for (size_t c = 0; c < num_children; ++c) {
      while (decoded < num_children &&
             decoded <= c + kChildLookahead) {
        decode_child(decoded++);
      }
      const size_t cb = slot.run_begin + c * child_run_len;
      const size_t ce = std::min(run_end, cb + child_run_len);
      const size_t* wlo = window_lo[c % kChildRing];
      const size_t* whi = window_hi[c % kChildRing];
      // Count the child searches actually performed, not the speculatively
      // decoded lookahead windows, so the counters match the scalar Select
      // (which stops counting at the descend child) exactly.
      if (slot.casc_valid) {
        stats.cascade_lookups += slot.num_bounds;
      } else {
        stats.fallbacks += slot.num_bounds;
      }
      size_t count = 0;
      for (size_t b = 0; b < slot.num_bounds; b += 2) {
        child_pos[b] =
            child_lvl.data.LowerBound(cb + wlo[b], cb + whi[b], slot.key[b]) -
            cb;
        child_pos[b + 1] = child_lvl.data.LowerBound(cb + wlo[b + 1],
                                                     cb + whi[b + 1],
                                                     slot.key[b + 1]) -
                           cb;
        count += child_pos[b + 1] - child_pos[b];
      }
      if (slot.rank < count) {
        for (size_t b = 0; b < slot.num_bounds; ++b) {
          slot.pos[b] = child_pos[b];
        }
        slot.run_begin = cb;
        slot.run_len_actual = ce - cb;
        --slot.level;
        enter_level(slot);
        return;
      }
      slot.rank -= count;
    }
    (void)slot_index;
    HWF_CHECK_MSG(false, "MergeSortTree::Select: i out of range");
  };

  for (size_t s = 0; s < num_slots; ++s) {
    if (refill(slots[s])) ++active;
  }
  while (active > 0) {
    ++stats.rounds;
    for (size_t s = 0; s < num_slots; ++s) {
      Slot& slot = slots[s];
      switch (slot.phase) {
        case kFree:
          break;
        case kTopBisect:
          step_top_bisect(slot);
          break;
        case kDescend:
          step_descend(slot, s);
          break;
      }
    }
  }
  stats.Flush(queries.size());
}

// ---------------------------------------------------------------------------
// Count cover batch (CountLessBatch / VisitCountCoverBatch).
// ---------------------------------------------------------------------------

template <typename Index>
template <typename Emitter>
void MergeSortTree<Index>::RunCountCoverBatch(
    std::span<const CountQuery> queries, size_t group_size,
    Emitter& emitter) const {
  if (queries.empty()) return;
  if (n_ <= 1) {
    // Matches the scalar VisitCountCover degenerate cases.
    for (size_t q = 0; q < queries.size(); ++q) {
      HWF_CHECK(queries[q].pos_hi <= n_);
      if (queries[q].pos_lo < queries[q].pos_hi && n_ == 1 &&
          levels_[0].data.Get(0) < queries[q].threshold) {
        emitter.Emit(0, q, 0, 0, 1, false);
      }
      emitter.Retire(0, q);
    }
    return;
  }
  if (group_size == 0) group_size = 1;

  internal_mst::ProbeBatchStats stats;
  const Index* top = levels_.back().data.ResidentData();
  const size_t k = opts_.sampling;
  const size_t f = opts_.fanout;
  const size_t top_level = levels_.size() - 1;

  enum Phase : uint8_t { kFree, kTopBisect, kDescend };
  // A frontier node of the cover walk. The frontier holds at most two
  // nodes: once the query's [lo, hi) bounds split across children, the
  // lower boundary's chain and the upper boundary's chain each keep exactly
  // one partially-covered child per level.
  struct Node {
    size_t run_begin;
    size_t run_len_actual;
    size_t p;   // lower-bound position of the threshold within the run
    size_t lo;  // query bounds clamped to the run
    size_t hi;
    size_t casc_base;
    bool casc_next;
  };
  struct Slot {
    Phase phase = kFree;
    size_t query = 0;
    Index threshold = 0;
    size_t level = 0;
    bool casc_valid = false;
    size_t bis_base = 0;
    size_t bis_len = 0;
    size_t num_nodes = 0;
    Node nodes[2];
  };

  const size_t num_slots = std::min(group_size, queries.size());
  std::vector<Slot> slots(num_slots);
  size_t next_query = 0;
  size_t active = 0;

  auto enter_level = [&](Slot& slot) {
    if (slot.level == 1) {
      const mem::SpillableVector<Index>& data0 = levels_[0].data;
      const size_t stride = 64 / sizeof(Index);
      for (size_t ni = 0; ni < slot.num_nodes; ++ni) {
        const Node& node = slot.nodes[ni];
        for (size_t i = node.lo; i < node.hi; i += stride) {
          data0.PrefetchElement(i);
          ++stats.prefetches;
        }
      }
      slot.casc_valid = false;
      return;
    }
    const Level& lvl = levels_[slot.level];
    slot.casc_valid = !lvl.cascade.empty();
    if (!slot.casc_valid) return;
    const size_t child_run_len = levels_[slot.level - 1].run_len;
    for (size_t ni = 0; ni < slot.num_nodes; ++ni) {
      Node& node = slot.nodes[ni];
      const size_t run_index = node.run_begin / lvl.run_len;
      const size_t num_samples = SamplesForLen(node.run_len_actual);
      const size_t s = std::min(node.p / k, num_samples - 1);
      node.casc_base = (run_index * lvl.samples_per_full_run + s) * f;
      node.casc_next = s + 1 < num_samples;
      const size_t first = (node.lo - node.run_begin) / child_run_len;
      const size_t last = (node.hi - 1 - node.run_begin) / child_run_len;
      lvl.cascade.PrefetchElement(node.casc_base + first);
      lvl.cascade.PrefetchElement(node.casc_base + last);
      stats.prefetches += 2;
      if (node.casc_next) {
        lvl.cascade.PrefetchElement(node.casc_base + f + first);
        lvl.cascade.PrefetchElement(node.casc_base + f + last);
        stats.prefetches += 2;
      }
    }
  };

  auto refill = [&](Slot& slot, size_t slot_index) -> bool {
    while (next_query < queries.size()) {
      const size_t q = next_query++;
      const CountQuery& cq = queries[q];
      HWF_CHECK(cq.pos_hi <= n_);
      if (cq.pos_lo >= cq.pos_hi) {
        emitter.Retire(slot_index, q);  // empty query: no pieces
        continue;
      }
      slot.phase = kTopBisect;
      slot.query = q;
      slot.threshold = cq.threshold;
      slot.bis_base = 0;
      slot.bis_len = n_;
      slot.num_nodes = 1;
      slot.nodes[0].lo = cq.pos_lo;
      slot.nodes[0].hi = cq.pos_hi;
      HWF_PREFETCH(top + n_ / 2 - 1);
      ++stats.prefetches;
      return true;
    }
    slot.phase = kFree;
    return false;
  };

  auto step_top_bisect = [&](Slot& slot, size_t slot_index) {
    const size_t len = slot.bis_len;
    const size_t half = len / 2;
    const size_t base = slot.bis_base;
    slot.bis_base =
        (top[base + half - 1] < slot.threshold) ? base + half : base;
    slot.bis_len = len - half;
    if (slot.bis_len > 1) {
      HWF_PREFETCH(top + slot.bis_base + slot.bis_len / 2 - 1);
      ++stats.prefetches;
      return;
    }
    const size_t p =
        slot.bis_base + ((top[slot.bis_base] < slot.threshold) ? 1 : 0);
    const size_t lo = slot.nodes[0].lo;
    const size_t hi = slot.nodes[0].hi;
    if (lo == 0 && hi == n_) {
      if (p > 0) emitter.Emit(slot_index, slot.query, top_level, 0, p, false);
      emitter.Retire(slot_index, slot.query);
      if (!refill(slot, slot_index)) --active;
      return;
    }
    slot.nodes[0] =
        Node{/*run_begin=*/0, /*run_len_actual=*/n_, p, lo, hi, 0, false};
    slot.level = top_level;
    slot.phase = kDescend;
    enter_level(slot);
  };

  auto step_descend = [&](Slot& slot, size_t slot_index) {
    const size_t level = slot.level;
    const Level& child_lvl = levels_[level - 1];
    const Level& lvl = levels_[level];
    const size_t child_run_len = child_lvl.run_len;
    Node new_nodes[2];
    size_t num_new = 0;
    for (size_t ni = 0; ni < slot.num_nodes; ++ni) {
      const Node& node = slot.nodes[ni];
      const size_t run_end = node.run_begin + node.run_len_actual;
      // Pieces of a node that still contains the lower boundary (and whose
      // upper bound is the run end) precede, in scalar DFS order, every
      // piece emitted at this level or above — they go to the replayed-
      // in-reverse buffer. Everything else is already in scalar order.
      const bool lo_side =
          node.lo > node.run_begin && node.hi == run_end;
      const size_t first = (node.lo - node.run_begin) / child_run_len;
      const size_t last = (node.hi - 1 - node.run_begin) / child_run_len;
      for (size_t c = first; c <= last; ++c) {
        const size_t cb = node.run_begin + c * child_run_len;
        const size_t ce = std::min(run_end, cb + child_run_len);
        size_t pc;
        if (level == 1) {
          pc = levels_[0].data.Get(cb) < slot.threshold ? 1 : 0;
        } else {
          size_t window_lo = 0;
          size_t window_hi = ce - cb;
          if (slot.casc_valid) {
            ++stats.cascade_lookups;
            window_lo =
                static_cast<size_t>(lvl.cascade.Get(node.casc_base + c));
            if (node.casc_next) {
              window_hi = std::min<size_t>(
                  static_cast<size_t>(lvl.cascade.Get(node.casc_base + f + c)),
                  ce - cb);
            }
          } else {
            ++stats.fallbacks;
          }
          pc = child_lvl.data.LowerBound(cb + window_lo, cb + window_hi,
                                         slot.threshold) -
               cb;
        }
        if (cb >= node.lo && ce <= node.hi) {
          if (pc > 0) {
            emitter.Emit(slot_index, slot.query, level - 1, cb, pc, lo_side);
          }
        } else {
          new_nodes[num_new++] = Node{cb,
                                      ce - cb,
                                      pc,
                                      std::max(node.lo, cb),
                                      std::min(node.hi, ce),
                                      0,
                                      false};
        }
      }
    }
    emitter.EndLoRound(slot_index);
    if (num_new == 0) {
      emitter.Retire(slot_index, slot.query);
      if (!refill(slot, slot_index)) --active;
      return;
    }
    slot.num_nodes = num_new;
    for (size_t ni = 0; ni < num_new; ++ni) slot.nodes[ni] = new_nodes[ni];
    --slot.level;
    enter_level(slot);
  };

  for (size_t s = 0; s < num_slots; ++s) {
    if (refill(slots[s], s)) ++active;
  }
  while (active > 0) {
    ++stats.rounds;
    for (size_t s = 0; s < num_slots; ++s) {
      Slot& slot = slots[s];
      switch (slot.phase) {
        case kFree:
          break;
        case kTopBisect:
          step_top_bisect(slot, s);
          break;
        case kDescend:
          step_descend(slot, s);
          break;
      }
    }
  }
  stats.Flush(queries.size());
}

template <typename Index>
void MergeSortTree<Index>::CountLessBatch(std::span<const CountQuery> queries,
                                          size_t group_size,
                                          size_t* out) const {
  for (size_t q = 0; q < queries.size(); ++q) out[q] = 0;
  internal_mst::CountCoverSum emitter{out};
  RunCountCoverBatch(queries, group_size, emitter);
}

template <typename Index>
template <typename Visitor>
void MergeSortTree<Index>::VisitCountCoverBatch(
    std::span<const CountQuery> queries, size_t group_size,
    Visitor&& visit) const {
  using VisitorT = std::remove_reference_t<Visitor>;
  internal_mst::OrderedCoverReplay<VisitorT> emitter(&visit);
  RunCountCoverBatch(queries, group_size, emitter);
}

}  // namespace hwf

#endif  // HWF_MST_PROBE_BATCH_H_
