#ifndef HWF_MST_ANNOTATED_MST_H_
#define HWF_MST_ANNOTATED_MST_H_

#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "mst/merge_sort_tree.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// An aggregate-annotated merge sort tree (paper §4.3, Fig. 5).
///
/// Every element of every sorted run carries the running aggregate of its
/// run prefix. A framed distinct aggregate then (1) covers the frame with
/// sorted runs, (2) locates the frame's lower bound inside each run via the
/// shared cascading machinery, and (3) merges the prefix aggregates at
/// those boundaries — O(f·log n) per frame, no inverse function needed.
///
/// `Ops` follows the concept documented in aggregate_ops.h.
template <typename Index, typename Ops>
class AnnotatedMergeSortTree {
 public:
  using Input = typename Ops::Input;
  using State = typename Ops::State;
  using Options = MergeSortTreeOptions;

  AnnotatedMergeSortTree() = default;

  /// Builds the tree over `keys` with one aggregate `input` per key (both
  /// consumed). Prefix states are computed level by level in parallel.
  static AnnotatedMergeSortTree Build(std::vector<Index> keys,
                                      std::vector<Input> inputs,
                                      const Options& options = {},
                                      ThreadPool& pool = ThreadPool::Default()) {
    HWF_CHECK(keys.size() == inputs.size());
    AnnotatedMergeSortTree result;
    std::vector<std::vector<Input>> level_inputs;
    result.tree_ = MergeSortTree<Index>::template BuildWithPayload<Input>(
        std::move(keys), options, pool, &inputs, &level_inputs);
    // The prefix-state annotation is part of tree construction cost-wise:
    // report it into the profile's tree-build phase (not per level — the
    // per-level slots hold the merge times from BuildWithPayload).
    HWF_TRACE_SCOPE_ARG("mst.annotate", "n", result.tree_.size());
    std::chrono::steady_clock::time_point annotate_start;
    if (options.profile != nullptr) {
      annotate_start = std::chrono::steady_clock::now();
    }
    result.prefixes_.resize(level_inputs.size());
    const size_t n = result.tree_.size();
    for (size_t level = 0; level < level_inputs.size(); ++level) {
      const std::vector<Input>& in = level_inputs[level];
      std::vector<State>& pref = result.prefixes_[level];
      pref.resize(n);
      const size_t run_len = RunLen(options.fanout, level);
      const size_t num_runs = run_len == 0 ? 1 : (n + run_len - 1) / run_len;
      ParallelFor(
          0, num_runs,
          [&](size_t run_lo, size_t run_hi) {
            for (size_t r = run_lo; r < run_hi; ++r) {
              const size_t begin = r * run_len;
              const size_t end = std::min(n, begin + run_len);
              if (begin >= end) continue;
              State acc = Ops::MakeState(in[begin]);
              pref[begin] = acc;
              for (size_t i = begin + 1; i < end; ++i) {
                Ops::Merge(acc, Ops::MakeState(in[i]));
                pref[i] = acc;
              }
            }
          },
          pool, /*morsel_size=*/1);
    }
    if (options.profile != nullptr) {
      options.profile->AddPhaseSeconds(
          obs::ProfilePhase::kTreeBuild,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        annotate_start)
              .count());
    }
    return result;
  }

  /// Number of entries.
  size_t size() const { return tree_.size(); }

  /// The underlying (un-annotated) tree, e.g. for CountLess queries.
  const MergeSortTree<Index>& tree() const { return tree_; }

  /// Merges the states of all entries at positions [pos_lo, pos_hi) whose
  /// key is < threshold. Returns nullopt when no entry qualifies.
  std::optional<State> AggregateLess(size_t pos_lo, size_t pos_hi,
                                     Index threshold) const {
    std::optional<State> result;
    tree_.VisitCountCover(
        pos_lo, pos_hi, threshold,
        [&](size_t level, size_t run_begin, size_t count) {
          const State& piece = prefixes_[level][run_begin + count - 1];
          if (result.has_value()) {
            Ops::Merge(*result, piece);
          } else {
            result = piece;
          }
        });
    return result;
  }

  /// Bytes held by tree levels plus prefix annotations.
  size_t MemoryUsageBytes() const {
    size_t bytes = tree_.MemoryUsageBytes();
    for (const std::vector<State>& pref : prefixes_) {
      bytes += pref.capacity() * sizeof(State);
    }
    return bytes;
  }

 private:
  static size_t RunLen(size_t fanout, size_t level) {
    size_t len = 1;
    for (size_t i = 0; i < level; ++i) len *= fanout;
    return len;
  }

  MergeSortTree<Index> tree_;
  std::vector<std::vector<State>> prefixes_;
};

}  // namespace hwf

#endif  // HWF_MST_ANNOTATED_MST_H_
