#ifndef HWF_MST_ANNOTATED_MST_H_
#define HWF_MST_ANNOTATED_MST_H_

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "mem/memory_budget.h"
#include "mem/spill_file.h"
#include "mem/spillable_vector.h"
#include "mst/merge_sort_tree.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// An aggregate-annotated merge sort tree (paper §4.3, Fig. 5).
///
/// Every element of every sorted run carries the running aggregate of its
/// run prefix. A framed distinct aggregate then (1) covers the frame with
/// sorted runs, (2) locates the frame's lower bound inside each run via the
/// shared cascading machinery, and (3) merges the prefix aggregates at
/// those boundaries — O(f·log n) per frame, no inverse function needed.
///
/// `Ops` follows the concept documented in aggregate_ops.h.
template <typename Index, typename Ops>
class AnnotatedMergeSortTree {
 public:
  using Input = typename Ops::Input;
  using State = typename Ops::State;
  using Options = MergeSortTreeOptions;

  AnnotatedMergeSortTree() = default;

  /// Builds the tree over `keys` with one aggregate `input` per key (both
  /// consumed). Prefix states are computed level by level in parallel.
  ///
  /// Under a memory budget (options.mem) the per-level input permutations
  /// and prefix-state arrays are accounted; inputs are freed as soon as
  /// their level's prefixes exist, and prefix levels are evicted to a spill
  /// file (lowest level first) when the budget is over its soft limit.
  static AnnotatedMergeSortTree Build(std::vector<Index> keys,
                                      std::vector<Input> inputs,
                                      const Options& options = {},
                                      ThreadPool& pool = ThreadPool::Default()) {
    HWF_CHECK(keys.size() == inputs.size());
    AnnotatedMergeSortTree result;
    mem::MemoryBudget* budget = options.mem.budget;
    std::vector<std::vector<Input>> level_inputs;
    result.tree_ = MergeSortTree<Index>::template BuildWithPayload<Input>(
        std::move(keys), options, pool, &inputs, &level_inputs);
    // The prefix-state annotation is part of tree construction cost-wise:
    // report it into the profile's tree-build phase (not per level — the
    // per-level slots hold the merge times from BuildWithPayload).
    HWF_TRACE_SCOPE_ARG("mst.annotate", "n", result.tree_.size());
    std::chrono::steady_clock::time_point annotate_start;
    if (options.profile != nullptr) {
      annotate_start = std::chrono::steady_clock::now();
    }
    const size_t n = result.tree_.size();
    // The level input permutations were built un-accounted inside
    // BuildWithPayload (they are transient); account them here for the
    // stretch they still live.
    mem::MemoryReservation inputs_bytes;
    inputs_bytes.ForceReserve(budget,
                              level_inputs.size() * n * sizeof(Input));
    result.prefixes_.resize(level_inputs.size());
    for (size_t level = 0; level < level_inputs.size(); ++level) {
      std::vector<Input>& in = level_inputs[level];
      mem::SpillableVector<State>& pref = result.prefixes_[level];
      pref.Attach(budget);
      pref.ResizeResident(n);
      State* pref_data = pref.MutableData();
      const size_t run_len = RunLen(options.fanout, level);
      const size_t num_runs = run_len == 0 ? 1 : (n + run_len - 1) / run_len;
      ParallelFor(
          0, num_runs,
          [&](size_t run_lo, size_t run_hi) {
            for (size_t r = run_lo; r < run_hi; ++r) {
              const size_t begin = r * run_len;
              const size_t end = std::min(n, begin + run_len);
              if (begin >= end) continue;
              State acc = Ops::MakeState(in[begin]);
              pref_data[begin] = acc;
              for (size_t i = begin + 1; i < end; ++i) {
                Ops::Merge(acc, Ops::MakeState(in[i]));
                pref_data[i] = acc;
              }
            }
          },
          pool, /*morsel_size=*/1);
      // This level's inputs are no longer needed — free them eagerly so
      // peak memory tracks (prefix levels + remaining inputs), not both in
      // full.
      in.clear();
      in.shrink_to_fit();
      inputs_bytes.ReleasePartial(n * sizeof(Input));
    }
    // Shed prefix levels (lowest first — lower levels are probed via the
    // page cache anyway) while over the soft limit.
    if (options.mem.can_spill()) {
      for (size_t level = 0; level + 1 < result.prefixes_.size() &&
                             budget->over_soft_limit();
           ++level) {
        if (!result.EnsureSpillFile()) break;
        obs::ScopedPhaseTimer spill_timer(options.mem.profile,
                                          obs::ProfilePhase::kSpill);
        if (!result.prefixes_[level].Spill(result.spill_file_.get()).ok()) {
          break;
        }
        obs::Add(obs::Counter::kMemMstLevelsEvicted);
      }
    }
    if (options.profile != nullptr) {
      options.profile->AddPhaseSeconds(
          obs::ProfilePhase::kTreeBuild,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        annotate_start)
              .count());
    }
    return result;
  }

  /// Number of entries.
  size_t size() const { return tree_.size(); }

  /// The underlying (un-annotated) tree, e.g. for CountLess queries.
  const MergeSortTree<Index>& tree() const { return tree_; }

  /// Merges the states of all entries at positions [pos_lo, pos_hi) whose
  /// key is < threshold. Returns nullopt when no entry qualifies.
  std::optional<State> AggregateLess(size_t pos_lo, size_t pos_hi,
                                     Index threshold) const {
    std::optional<State> result;
    tree_.VisitCountCover(
        pos_lo, pos_hi, threshold,
        [&](size_t level, size_t run_begin, size_t count) {
          const State piece = prefixes_[level].Get(run_begin + count - 1);
          if (result.has_value()) {
            Ops::Merge(*result, piece);
          } else {
            result = piece;
          }
        });
    return result;
  }

  using CountQuery = typename MergeSortTree<Index>::CountQuery;

  /// Batched AggregateLess: answers `queries` through the prefetch-
  /// pipelined cover kernel, keeping `group_size` queries in flight.
  /// `out[q]` (which must start as nullopt) receives query q's merged
  /// state, or stays nullopt when no entry qualifies. The kernel delivers
  /// each query's cover pieces in exactly the scalar visit order, so
  /// floating-point states are bit-identical to per-query AggregateLess.
  void AggregateLessBatch(std::span<const CountQuery> queries,
                          size_t group_size,
                          std::optional<State>* out) const {
    tree_.VisitCountCoverBatch(
        queries, group_size,
        [&](size_t q, size_t level, size_t run_begin, size_t count) {
          const State piece = prefixes_[level].Get(run_begin + count - 1);
          std::optional<State>& result = out[q];
          if (result.has_value()) {
            Ops::Merge(*result, piece);
          } else {
            result = piece;
          }
        });
  }

  /// Bytes held in RAM by tree levels plus prefix annotations.
  size_t MemoryUsageBytes() const {
    size_t bytes = tree_.MemoryUsageBytes();
    for (const mem::SpillableVector<State>& pref : prefixes_) {
      bytes += pref.resident_bytes();
    }
    return bytes;
  }

 private:
  static size_t RunLen(size_t fanout, size_t level) {
    size_t len = 1;
    for (size_t i = 0; i < level; ++i) len *= fanout;
    return len;
  }

  bool EnsureSpillFile() {
    if (spill_file_ != nullptr) return true;
    StatusOr<std::unique_ptr<mem::SpillFile>> file = mem::SpillFile::Create();
    if (!file.ok()) return false;
    spill_file_ = std::move(file).value();
    return true;
  }

  MergeSortTree<Index> tree_;
  std::vector<mem::SpillableVector<State>> prefixes_;
  std::unique_ptr<mem::SpillFile> spill_file_;
};

}  // namespace hwf

#endif  // HWF_MST_ANNOTATED_MST_H_
