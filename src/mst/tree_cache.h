#ifndef HWF_MST_TREE_CACHE_H_
#define HWF_MST_TREE_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>

#include "common/status.h"

namespace hwf {
namespace mst {

/// Cross-query cache for merge-sort-tree build artifacts.
///
/// The paper's cost split (build O(n log n), probe O(log^2 n) per row) makes
/// the tree the natural unit of reuse: when the same table version is queried
/// repeatedly with the same PARTITION BY / ORDER BY, every build-phase
/// artifact — the global sort permutation, the per-partition merge sort
/// trees, rank code arrays — is identical across queries, and caching them
/// turns repeat queries into probe-only work.
///
/// Design:
///   - EXACT string keys. Keys embed the table version (a globally monotonic
///     epoch assigned at registration), the sort specification and every
///     build parameter (fanout, sampling, cascading, index width, filter,
///     argument). Two different configurations can never alias: there is no
///     hashing of semantic content into the key, only of the key into the
///     map. Per-partition probe artifacts embed the spec's canonical
///     ordering (sorted PARTITION BY set + ORDER BY) rather than its
///     declared form, so specs that differ only in frame or PARTITION BY
///     column order share trees; sort artifacts keep the declared order
///     plus the regime suffix, because they identify an arrangement.
///   - Type-erased values. Entries hold shared_ptr<const void> plus the
///     std::type_index of the stored T; a lookup with the wrong T is a miss,
///     never a reinterpretation.
///   - Byte-capped LRU. Each entry carries its caller-declared footprint;
///     inserts evict least-recently-used entries until the new entry fits.
///     Entries larger than the whole cap are returned to the caller but not
///     retained.
///   - Singleflight builds. GetOrBuild serializes concurrent builders of the
///     same key on a striped lock, so N sessions issuing the same query
///     build the tree once and share it (the other N-1 block, then hit).
///
/// Memory-safety rule for cached trees: values must be self-contained — in
/// particular they must NOT hold MemoryReservations against a per-query
/// budget, which dies with the query. The window executor enforces this by
/// only engaging the cache for unbudgeted executions and clearing the tree
/// MemoryContext for cached builds.
///
/// Thread-safe; all public members may be called concurrently.
class TreeCache {
 public:
  /// `capacity_bytes` caps the sum of declared entry footprints; 0 means
  /// "cache nothing" (every lookup misses, every insert is dropped), which
  /// gives benchmarks a cache-off mode with identical code paths.
  explicit TreeCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  TreeCache(const TreeCache&) = delete;
  TreeCache& operator=(const TreeCache&) = delete;

  /// A value admitted to (or produced for) the cache: the artifact plus its
  /// approximate resident footprint in bytes.
  template <typename T>
  struct Built {
    std::shared_ptr<const T> value;
    size_t bytes = 0;
  };

  /// Returns the cached value for `key`, or nullptr on a miss (absent key or
  /// mismatched type). Refreshes recency on a hit.
  template <typename T>
  std::shared_ptr<const T> Get(const std::string& key) {
    return std::static_pointer_cast<const T>(GetRaw(key, typeid(T)));
  }

  /// Inserts `built` under `key`, evicting LRU entries to fit. Replaces any
  /// existing entry for the key.
  template <typename T>
  void Put(const std::string& key, const Built<T>& built) {
    PutRaw(key, std::static_pointer_cast<const void>(built.value), typeid(T),
           built.bytes);
  }

  /// Hit: returns the cached value. Miss: runs `build` — at most once per
  /// key across concurrent callers — inserts the result and returns it.
  /// Build errors are returned to every caller waiting on the flight's
  /// stripe and nothing is cached.
  template <typename T>
  StatusOr<std::shared_ptr<const T>> GetOrBuild(
      const std::string& key,
      const std::function<StatusOr<Built<T>>()>& build) {
    if (std::shared_ptr<const T> hit = Get<T>(key)) return hit;
    std::lock_guard<std::mutex> flight(StripeFor(key));
    // A concurrent flight on the same stripe may have built it meanwhile.
    if (std::shared_ptr<const T> hit = Get<T>(key)) return hit;
    StatusOr<Built<T>> built = build();
    if (!built.ok()) return built.status();
    Put<T>(key, *built);
    return std::move(built->value);
  }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t capacity_bytes = 0;
  };
  Stats stats() const;

  /// Drops every entry (stats counters are retained).
  void Clear();

  /// Drops every entry whose key satisfies `predicate`; returns the number
  /// dropped (counted as evictions). The service uses this to garbage-
  /// collect artifacts keyed on catalog epochs that are no longer
  /// registered — without it, re-registering a table leaks the old
  /// version's trees until byte-pressure eviction happens to reach them.
  size_t EvictIf(const std::function<bool(const std::string&)>& predicate);

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::type_index type = typeid(void);
    size_t bytes = 0;
    uint64_t tick = 0;
  };

  std::shared_ptr<const void> GetRaw(const std::string& key,
                                     std::type_index type);
  void PutRaw(const std::string& key, std::shared_ptr<const void> value,
              std::type_index type, size_t bytes);
  /// Evicts LRU entries until `need` more bytes fit. Caller holds mutex_.
  void EvictToFitLocked(size_t need);
  std::mutex& StripeFor(const std::string& key) {
    return flights_[std::hash<std::string>{}(key) % kFlightStripes].mutex;
  }

  const size_t capacity_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  size_t bytes_ = 0;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;

  /// Build-flight stripes. Distinct keys that share a stripe serialize
  /// their builds — harmless (builds are rare) and far simpler than per-key
  /// flight bookkeeping.
  static constexpr size_t kFlightStripes = 16;
  struct FlightStripe {
    std::mutex mutex;
  };
  std::array<FlightStripe, kFlightStripes> flights_;
};

}  // namespace mst
}  // namespace hwf

#endif  // HWF_MST_TREE_CACHE_H_
