#include "service/result_format.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "storage/csv.h"

namespace hwf {
namespace service {
namespace {

void AppendJsonString(const std::string& value, std::string* out) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonValue(const Column& column, size_t row, std::string* out) {
  if (column.IsNull(row)) {
    *out += "null";
    return;
  }
  char buf[40];
  switch (column.type()) {
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%" PRId64, column.GetInt64(row));
      *out += buf;
      break;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", column.GetDouble(row));
      *out += buf;
      break;
    case DataType::kString:
      AppendJsonString(column.GetString(row), out);
      break;
  }
}

std::string ToJson(const Table& table) {
  std::string out = "{\"columns\":[";
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(',');
    AppendJsonString(table.column_name(c), &out);
  }
  out += "],\"rows\":[";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (r > 0) out.push_back(',');
    out.push_back('[');
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(',');
      AppendJsonValue(table.column(c), r, &out);
    }
    out.push_back(']');
  }
  out += "]}\n";
  return out;
}

}  // namespace

StatusOr<ResultFormat> ParseResultFormat(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "csv") return ResultFormat::kCsv;
  if (lower == "json") return ResultFormat::kJson;
  return Status::InvalidArgument("unknown result format '" +
                                 std::string(name) + "' (want csv or json)");
}

std::string FormatTable(const Table& table, ResultFormat format) {
  switch (format) {
    case ResultFormat::kCsv:
      return ToCsv(table);
    case ResultFormat::kJson:
      return ToJson(table);
  }
  return std::string();
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kNotImplemented:
      return 5;
    case StatusCode::kTypeMismatch:
      return 6;
    case StatusCode::kInternal:
      return 7;
    case StatusCode::kResourceExhausted:
      return 8;
    case StatusCode::kCancelled:
      return 9;
    case StatusCode::kDeadlineExceeded:
      return 10;
  }
  return 1;
}

}  // namespace service
}  // namespace hwf
