#ifndef HWF_SERVICE_SQL_PARSER_H_
#define HWF_SERVICE_SQL_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "window/spec.h"

namespace hwf {
namespace service {

/// SQL-subset front-end for the window-function engine.
///
/// The accepted statement shape is
///
///   SELECT <call> [AS alias] [, <call> [AS alias]]... FROM <table>
///
/// where every select item is a window function call:
///
///   fn(args) [WITHIN GROUP (ORDER BY keys)] [FILTER (WHERE col)]
///            [IGNORE NULLS | RESPECT NULLS]
///            OVER ([PARTITION BY cols] [ORDER BY keys] [frame])
///
/// The frame clause covers every form in window/spec.h:
///
///   ROWS|RANGE|GROUPS [BETWEEN] <bound> [AND <bound>]
///     [EXCLUDE NO OTHERS|CURRENT ROW|GROUP|TIES]
///   bound := UNBOUNDED PRECEDING | <int> PRECEDING | <col> PRECEDING
///          | CURRENT ROW | <int> FOLLOWING | <col> FOLLOWING
///          | UNBOUNDED FOLLOWING
///
/// Column-valued bound offsets (`<col> PRECEDING`) are the paper's
/// arbitrarily-framed extension (§2.2); together with the DISTINCT
/// aggregates, the function-level ORDER BY accepted inside the call parens
/// (e.g. `percentile_disc(0.5 ORDER BY price)`, the paper's Fig. 9
/// syntax, equivalent to WITHIN GROUP) and FILTER on every function, the
/// grammar covers the paper's §2.4 query space.
///
/// Deliberate dialect choices, documented rather than configurable:
///  - Keywords are case-insensitive; identifiers are case-sensitive and
///    must match a registered column name exactly.
///  - An omitted NULLS clause follows PostgreSQL: NULLS LAST for ASC,
///    NULLS FIRST for DESC.
///  - An omitted frame clause means the SQL default: the whole partition
///    when there is no ORDER BY, otherwise "up to and including the
///    current row's peer group" (lowered to GROUPS BETWEEN UNBOUNDED
///    PRECEDING AND CURRENT ROW, which is exactly the standard's RANGE
///    UNBOUNDED PRECEDING ... CURRENT ROW semantics without requiring a
///    numeric ORDER BY key).

/// One unbound ORDER BY key (column still a name).
struct RawSortKey {
  std::string column;
  bool ascending = true;
  bool nulls_first = false;  // resolved default already applied
};

/// One unbound frame bound.
struct RawFrameBound {
  FrameBoundKind kind = FrameBoundKind::kUnboundedPreceding;
  int64_t offset = 0;
  std::string offset_column;  // non-empty for per-row column offsets
};

/// One unbound OVER clause.
struct RawWindow {
  std::vector<std::string> partition_by;
  std::vector<RawSortKey> order_by;
  bool has_frame = false;
  FrameMode mode = FrameMode::kRows;
  RawFrameBound begin;
  RawFrameBound end;
  FrameExclusion exclusion = FrameExclusion::kNoOthers;
};

/// One positional argument inside the call parens: a column name or a
/// numeric literal.
struct RawArg {
  bool is_number = false;
  std::string column;
  double number = 0;
  bool is_integer = false;
  int64_t integer = 0;
};

/// One parsed (unbound) select item.
struct RawCall {
  std::string function;  // lower-cased
  bool star = false;     // count(*)
  bool distinct = false;
  std::vector<RawArg> args;
  std::vector<RawSortKey> order_by;  // inline or WITHIN GROUP
  std::string filter_column;         // empty = no FILTER clause
  bool ignore_nulls = false;
  RawWindow window;
  std::string alias;  // empty = use the function name
};

/// A parsed statement before column binding. `table_name` lets the caller
/// resolve the target table (e.g. from a catalog) and then bind.
struct ParsedStatement {
  std::vector<RawCall> items;
  std::string table_name;
};

/// Parses one statement (a trailing ';' is allowed). Errors carry the
/// character position of the offending token.
StatusOr<ParsedStatement> ParseStatement(std::string_view sql);

/// Calls sharing one OVER clause, evaluated in a single executor pass.
struct PlannedGroup {
  WindowSpec spec;
  std::vector<WindowFunctionCall> calls;
  /// Select-list position of each call (result-column assembly order).
  std::vector<size_t> output_slots;
};

/// An executable plan: groups of calls keyed by identical window specs.
struct PlannedQuery {
  std::string table_name;
  std::vector<std::string> output_names;  // one per select item
  std::vector<PlannedGroup> groups;
};

/// Resolves column names against `table`, maps function names to
/// WindowFunctionKind (including the DISTINCT variants), and groups the
/// calls by identical spec (WindowSpec's canonical operator== / hash). The
/// emitted groups are sequenced in shared-sort order: the producer of every
/// sort chain precedes the specs whose ordering it covers, mirroring the
/// executor's sharing plan (window/shared_sort.h).
StatusOr<PlannedQuery> BindStatement(const ParsedStatement& statement,
                                     const Table& table);

/// Parse + bind in one step, for callers that already hold the table.
StatusOr<PlannedQuery> PlanQuery(std::string_view sql, const Table& table);

}  // namespace service
}  // namespace hwf

#endif  // HWF_SERVICE_SQL_PARSER_H_
