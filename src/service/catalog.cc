#include "service/catalog.h"

#include <algorithm>
#include <utility>

namespace hwf {
namespace service {

std::atomic<uint64_t> Catalog::next_epoch_{1};

uint64_t Catalog::RegisterTable(const std::string& name, Table table) {
  const uint64_t epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  Snapshot snapshot{std::make_shared<const Table>(std::move(table)), epoch};
  std::lock_guard<std::mutex> lock(mutex_);
  tables_[name] = std::move(snapshot);
  return epoch;
}

StatusOr<Catalog::Snapshot> Catalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    names.reserve(tables_.size());
    for (const auto& [name, snapshot] : tables_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace service
}  // namespace hwf
