#include "service/catalog.h"

#include <algorithm>
#include <utility>

namespace hwf {
namespace service {

std::atomic<uint64_t> Catalog::next_epoch_{1};

Catalog::TableMeta Catalog::MetaOf(const TableState& state) {
  TableMeta meta;
  meta.epoch = state.epoch;
  meta.minor = state.minor.load(std::memory_order_relaxed);
  meta.gen = state.gen.load(std::memory_order_relaxed);
  meta.base_rows = state.base_rows.load(std::memory_order_relaxed);
  meta.delta_rows = state.delta_rows.load(std::memory_order_relaxed);
  meta.key_column = state.key_column_name;
  return meta;
}

void Catalog::Publish(TableState* state,
                      std::shared_ptr<const Snapshot> snap) {
  std::lock_guard<std::mutex> lock(state->publish_mutex);
  state->published = std::move(snap);
}

uint64_t Catalog::RegisterTableLocked(const std::string& name, Table table,
                                      size_t key_column,
                                      const std::string& key_column_name) {
  const uint64_t epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<TableState>();
  state->base = std::make_shared<const Table>(std::move(table));
  state->epoch = epoch;
  state->key_column = key_column;
  state->key_column_name = key_column_name;
  state->delta =
      std::make_unique<ingest::DeltaTable>(state->base, key_column);
  state->base_rows.store(state->base->num_rows(), std::memory_order_relaxed);

  auto snap = std::make_shared<Snapshot>();
  snap->table = state->base;
  snap->epoch = epoch;
  snap->base_rows = state->base->num_rows();
  Publish(state.get(), std::move(snap));

  std::lock_guard<std::mutex> lock(mutex_);
  tables_[name] = std::move(state);
  return epoch;
}

uint64_t Catalog::RegisterTable(const std::string& name, Table table) {
  return RegisterTableLocked(name, std::move(table),
                             ingest::DeltaTable::kNoKeyColumn, std::string());
}

StatusOr<uint64_t> Catalog::RegisterTable(const std::string& name, Table table,
                                          const std::string& key_column) {
  if (key_column.empty()) return RegisterTable(name, std::move(table));
  StatusOr<size_t> index = table.ColumnIndex(key_column);
  if (!index.ok()) {
    return Status::InvalidArgument("key column '" + key_column +
                                   "' does not exist in table '" + name + "'");
  }
  return RegisterTableLocked(name, std::move(table), *index, key_column);
}

std::shared_ptr<Catalog::TableState> Catalog::FindState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

StatusOr<Catalog::TableMeta> Catalog::AppendRows(const std::string& name,
                                                 const Table& rows) {
  std::shared_ptr<TableState> state = FindState(name);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  if (Status s = state->delta->Append(rows); !s.ok()) return s;
  state->minor.fetch_add(1, std::memory_order_relaxed);
  state->delta_rows.store(state->delta->delta_rows(),
                          std::memory_order_relaxed);
  Publish(state.get(), nullptr);  // Next lookup re-materializes.
  return MetaOf(*state);
}

StatusOr<Catalog::TableMeta> Catalog::UpsertRows(const std::string& name,
                                                 const Table& rows) {
  std::shared_ptr<TableState> state = FindState(name);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  StatusOr<ingest::UpsertStats> stats = state->delta->Upsert(rows);
  if (!stats.ok()) return stats.status();
  state->minor.fetch_add(1, std::memory_order_relaxed);
  if (stats->rewrote_existing()) {
    // Existing row ids changed value: retire every cached artifact built
    // against the previous content generation.
    state->gen.fetch_add(1, std::memory_order_relaxed);
  }
  state->delta_rows.store(state->delta->delta_rows(),
                          std::memory_order_relaxed);
  Publish(state.get(), nullptr);
  return MetaOf(*state);
}

StatusOr<Catalog::TableMeta> Catalog::Compact(const std::string& name) {
  std::shared_ptr<TableState> state = FindState(name);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  if (state->delta->empty()) return MetaOf(*state);

  // Reuse the published combined table when a lookup already paid for the
  // materialization; compaction is then a pure pointer swap.
  std::shared_ptr<const Table> combined;
  {
    std::lock_guard<std::mutex> publish_lock(state->publish_mutex);
    if (state->published != nullptr) combined = state->published->table;
  }
  if (combined == nullptr) {
    StatusOr<std::shared_ptr<const Table>> materialized =
        state->delta->Materialize();
    if (!materialized.ok()) return materialized.status();
    combined = std::move(*materialized);
  }

  state->base = combined;
  state->delta =
      std::make_unique<ingest::DeltaTable>(state->base, state->key_column);
  state->minor.fetch_add(1, std::memory_order_relaxed);
  state->base_rows.store(state->base->num_rows(), std::memory_order_relaxed);
  state->delta_rows.store(0, std::memory_order_relaxed);

  auto snap = std::make_shared<Snapshot>();
  snap->table = state->base;
  snap->epoch = state->epoch;
  snap->minor = state->minor.load(std::memory_order_relaxed);
  snap->gen = state->gen.load(std::memory_order_relaxed);
  snap->base_rows = state->base->num_rows();
  Publish(state.get(), std::move(snap));
  return MetaOf(*state);
}

StatusOr<Catalog::Snapshot> Catalog::Lookup(const std::string& name) const {
  std::shared_ptr<TableState> state = FindState(name);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  {
    std::lock_guard<std::mutex> publish_lock(state->publish_mutex);
    if (state->published != nullptr) return *state->published;
  }
  // A mutation landed since the last lookup: fold the delta in.
  std::lock_guard<std::mutex> lock(state->mutex);
  {
    std::lock_guard<std::mutex> publish_lock(state->publish_mutex);
    if (state->published != nullptr) return *state->published;
  }
  StatusOr<std::shared_ptr<const Table>> combined =
      state->delta->Materialize();
  if (!combined.ok()) return combined.status();

  auto snap = std::make_shared<Snapshot>();
  snap->table = std::move(*combined);
  snap->epoch = state->epoch;
  snap->minor = state->minor.load(std::memory_order_relaxed);
  snap->gen = state->gen.load(std::memory_order_relaxed);
  snap->base_rows = state->delta->base_rows();
  snap->delta_rows = state->delta->delta_rows();
  Snapshot result = *snap;
  Publish(state.get(), std::move(snap));
  return result;
}

StatusOr<Catalog::TableMeta> Catalog::PeekMeta(const std::string& name) const {
  std::shared_ptr<TableState> state = FindState(name);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  return MetaOf(*state);
}

std::vector<uint64_t> Catalog::LiveEpochs() const {
  std::vector<uint64_t> epochs;
  std::lock_guard<std::mutex> lock(mutex_);
  epochs.reserve(tables_.size());
  for (const auto& [name, state] : tables_) epochs.push_back(state->epoch);
  return epochs;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    names.reserve(tables_.size());
    for (const auto& [name, snapshot] : tables_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace service
}  // namespace hwf
