#ifndef HWF_SERVICE_CATALOG_H_
#define HWF_SERVICE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hwf {
namespace service {

/// A versioned registry of named tables.
///
/// Registration replaces the previous version atomically; queries that are
/// already executing keep their shared_ptr snapshot alive, so a table can
/// be re-registered under concurrent readers without synchronizing with
/// them. Every registration is stamped with a process-wide monotonic epoch
/// that the service uses as the tree-cache key prefix: replacing a table's
/// rows changes the epoch, so cached build artifacts of the old version
/// can never be served for the new one (they simply stop being referenced
/// and age out of the LRU).
class Catalog {
 public:
  struct Snapshot {
    std::shared_ptr<const Table> table;
    uint64_t epoch = 0;
  };

  /// Registers (or replaces) `name`. Returns the new version's epoch.
  uint64_t RegisterTable(const std::string& name, Table table);

  /// Immutable snapshot of the current version, or InvalidArgument when no
  /// table with that name is registered.
  StatusOr<Snapshot> Lookup(const std::string& name) const;

  /// Registered names, sorted, for diagnostics (STATS, error messages).
  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Snapshot> tables_;

  /// Process-wide so two services sharing one TreeCache cannot collide.
  static std::atomic<uint64_t> next_epoch_;
};

}  // namespace service
}  // namespace hwf

#endif  // HWF_SERVICE_CATALOG_H_
