#ifndef HWF_SERVICE_CATALOG_H_
#define HWF_SERVICE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ingest/delta_table.h"
#include "storage/table.h"

namespace hwf {
namespace service {

/// A versioned registry of named tables with a streaming mutation path.
///
/// Three version counters, each with a distinct cache-correctness role:
///
///  - `epoch`: process-wide monotonic id minted per RegisterTable. A
///    re-registration replaces the table wholesale, so artifacts keyed on
///    the old epoch can never be served again.
///  - `gen`: bumps when an *existing* row id's values are rewritten in
///    place (keyed UPSERT hitting a live row). Appends never bump it.
///  - `minor`: bumps on every mutation (append, upsert, compaction) —
///    purely observational (stats, gauges, change detection), never part
///    of a cache key.
///
/// The invariant the tree cache leans on: the value of every row id is a
/// pure function of (epoch, gen), and which ids exist is a pure function
/// of (epoch, gen, row count) — appends assign fresh ids at the tail and
/// ids are never renumbered, including across compaction (the compacted
/// base *is* the previously served combined table). Content-addressed
/// cache keys built from those coordinates therefore stay exact across
/// appends and compactions, which is what keeps warm queries probe-only.
///
/// Mutations buffer in an ingest::DeltaTable and fold into a combined
/// table lazily, on first lookup after a mutation (a flat column copy —
/// cheap next to the re-sort and tree rebuilds the delta path avoids).
/// Queries already holding a snapshot are never disturbed; lookups at an
/// unchanged version return the published snapshot without touching the
/// mutation lock.
class Catalog {
 public:
  struct Snapshot {
    std::shared_ptr<const Table> table;  // Combined: base + delta folded in.
    uint64_t epoch = 0;
    uint64_t minor = 0;
    uint64_t gen = 0;
    size_t base_rows = 0;  // Ids below this live in the compacted base.
    size_t delta_rows = 0;
  };

  /// Mutation receipt / metrics view; no table payload.
  struct TableMeta {
    uint64_t epoch = 0;
    uint64_t minor = 0;
    uint64_t gen = 0;
    size_t base_rows = 0;
    size_t delta_rows = 0;
    std::string key_column;  // Empty when UPSERT is not declared.
  };

  /// Registers (or replaces) `name`. Returns the new version's epoch.
  uint64_t RegisterTable(const std::string& name, Table table);

  /// As above, declaring `key_column` as the UPSERT key. Fails when the
  /// column does not exist.
  StatusOr<uint64_t> RegisterTable(const std::string& name, Table table,
                                   const std::string& key_column);

  /// Appends `rows` to `name`'s delta buffer: O(batch), no epoch or gen
  /// change, so cached artifacts for untouched data remain valid.
  StatusOr<TableMeta> AppendRows(const std::string& name, const Table& rows);

  /// Keyed upsert (requires a declared key column): matching rows are
  /// rewritten in place — bumping `gen` — and new keys append.
  StatusOr<TableMeta> UpsertRows(const std::string& name, const Table& rows);

  /// Folds the delta into a new base and resets the buffer. Row ids,
  /// epoch and gen are unchanged — observationally a no-op, so every
  /// cached artifact of the pre-compaction state remains servable.
  /// Honors the caller's thread-local StopToken (cooperative cancel).
  StatusOr<TableMeta> Compact(const std::string& name);

  /// Immutable snapshot of the current version, or InvalidArgument when no
  /// table with that name is registered. Materializes the combined table
  /// if a mutation landed since the last lookup.
  StatusOr<Snapshot> Lookup(const std::string& name) const;

  /// Version counters without materialization — safe for metrics scrapes.
  StatusOr<TableMeta> PeekMeta(const std::string& name) const;

  /// Epochs of all currently registered tables (for cache eviction of
  /// dead-epoch entries).
  std::vector<uint64_t> LiveEpochs() const;

  /// Registered names, sorted, for diagnostics (STATS, error messages).
  std::vector<std::string> TableNames() const;

 private:
  struct TableState {
    std::mutex mutex;  // Serializes mutations and materialization.
    std::shared_ptr<const Table> base;
    std::unique_ptr<ingest::DeltaTable> delta;
    uint64_t epoch = 0;
    size_t key_column = ingest::DeltaTable::kNoKeyColumn;
    std::string key_column_name;

    // Lock-free counters for PeekMeta/gauges (updated under `mutex`).
    std::atomic<uint64_t> minor{0};
    std::atomic<uint64_t> gen{0};
    std::atomic<size_t> base_rows{0};
    std::atomic<size_t> delta_rows{0};

    // Fast path: the latest fully-materialized snapshot, or null after a
    // mutation. Its own lock is held only for pointer copies.
    std::mutex publish_mutex;
    std::shared_ptr<const Snapshot> published;
  };

  uint64_t RegisterTableLocked(const std::string& name, Table table,
                               size_t key_column,
                               const std::string& key_column_name);
  std::shared_ptr<TableState> FindState(const std::string& name) const;
  static TableMeta MetaOf(const TableState& state);
  static void Publish(TableState* state, std::shared_ptr<const Snapshot> snap);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<TableState>> tables_;

  /// Process-wide so two services sharing one TreeCache cannot collide.
  static std::atomic<uint64_t> next_epoch_;
};

}  // namespace service
}  // namespace hwf

#endif  // HWF_SERVICE_CATALOG_H_
