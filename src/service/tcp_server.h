#ifndef HWF_SERVICE_TCP_SERVER_H_
#define HWF_SERVICE_TCP_SERVER_H_

#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace hwf {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace service {

class QueryService;

/// Line-protocol framing helpers shared by every connection handler (the
/// worker front door below, and hwf_serve's coordinator front door).
/// Responses are framed as
///
///   OK <nbytes>[ <extra>]\n<nbytes of payload>
///   OK\n
///   ERR <code> <message>\n
///
/// Existing clients parse the byte count with strtoull, which stops at the
/// first space, so header extras (like "id=<n>") stay backwards
/// compatible.
bool ReadLineFd(int fd, std::string* line);
bool ReadExactFd(int fd, size_t size, std::string* out);
bool WriteAllFd(int fd, const std::string& data);
bool SendPayloadFd(int fd, const std::string& payload,
                   const std::string& header_extra = std::string());
bool SendOkFd(int fd);
bool SendErrorFd(int fd, const Status& status);

/// Handles the HELLO protocol-version handshake line ("HELLO" or
/// "HELLO <version>"): replies "HWF <version>\n" when compatible, ERR 3
/// on skew. `rest` is the text after the command word. Returns true
/// (handled) always; shared by the worker and coordinator front doors.
bool HandleHello(int fd, const std::string& rest);

/// Serves one worker/single-process connection: the full command set
/// (QUERY/SUBMIT/WAIT/CANCEL/FORMAT/TIMEOUT/STATS/METRICS/PROFILE/
/// REGISTER/APPEND/UPSERT/COMPACT/HELLO/PING/QUIT) against `svc`.
/// Closes `fd` before returning.
void ServeServiceConnection(int fd, QueryService* svc,
                            obs::MetricsRegistry* registry);

/// A loopback TCP accept loop dispatching each connection to a handler on
/// its own thread.
///
/// Two ownership modes for connection threads:
///   - detached (hwf_serve): threads are detached; Stop only closes the
///     listener, and process exit reaps idle readers.
///   - joined (tests, in-process workers): Stop shuts down every live
///     connection socket and joins all threads, so tearing a server down
///     mid-query deterministically simulates a killed worker.
class TcpServer {
 public:
  using Handler = std::function<void(int fd)>;

  explicit TcpServer(Handler handler, bool detach_connections = false);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned); returns
  /// the bound port.
  StatusOr<int> Listen(int port);

  int listener_fd() const { return listener_; }
  int port() const { return port_; }

  /// Accepts until the listener is shut down (by Stop or by an external
  /// ::shutdown on listener_fd, e.g. from a signal handler). Blocks.
  void AcceptLoop();

  /// Runs AcceptLoop on a background thread.
  void Start();

  /// Shuts down the listener, joins the accept thread (when started via
  /// Start), and — unless connections are detached — aborts every live
  /// connection and joins its thread. Idempotent.
  void Stop();

 private:
  void HandleConnection(int fd);

  Handler handler_;
  bool detach_connections_;
  int listener_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mutex_;
  bool stopping_ = false;
  std::vector<int> live_fds_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace service
}  // namespace hwf

#endif  // HWF_SERVICE_TCP_SERVER_H_
