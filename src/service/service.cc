#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <unordered_set>
#include <utility>

#include "obs/counters.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwf {
namespace service {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

uint64_t SecondsToMicros(double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<uint64_t>(seconds * 1e6);
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", value);
  out->append(buf);
}

}  // namespace

const char* QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kQueueWait:
      return "queue_wait";
    case QueryStage::kParsePlan:
      return "parse_plan";
    case QueryStage::kSort:
      return "sort";
    case QueryStage::kTreeBuild:
      return "build";
    case QueryStage::kProbe:
      return "probe";
    case QueryStage::kTotal:
      return "total";
    case QueryStage::kNumStages:
      break;
  }
  return "unknown";
}

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kDeadline:
      return "deadline";
    case QueryOutcome::kError:
      return "error";
    case QueryOutcome::kRejected:
      return "rejected";
    case QueryOutcome::kNumOutcomes:
      break;
  }
  return "unknown";
}

/// Everything the service tracks about one query. The result slot is
/// guarded by `mutex`; the StopSource is wait-free and shared with the
/// executing session via the ambient-token mechanism.
struct QueryService::QueryState {
  uint64_t id = 0;
  std::string sql;
  QueryOptions options;
  StopSource stop;
  /// Admission reservation; held from Submit until the query finishes
  /// (success, error or cancellation), then released before the waiter
  /// is woken so "done" implies "budget returned".
  mem::MemoryReservation reservation;

  /// Lifecycle timestamps: admission (set in Submit) and the moment a
  /// session dequeued the query. total = finish - admit; the difference of
  /// the two timestamps is the queue wait, which is SUBTRACTED from total
  /// to get execution time — a query that waited is not "slow to execute".
  Clock::time_point admit_time;
  Clock::time_point dequeue_time;
  bool dequeued = false;

  /// Wall seconds spent in parse + bind (filled by ExecuteQuery).
  double parse_plan_seconds = 0;
  size_t plan_groups = 0;

  /// Process-counter baseline, rebased at dequeue: the delta at finish is
  /// this query's counter activity (approximate under concurrency — other
  /// executing queries' activity lands in the same window).
  obs::CounterDeltaTracker counters;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status status;
  QueryResult result;
};

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      cache_(options.enable_cache ? options.cache_capacity_bytes : 0),
      admission_budget_(options.memory_limit_bytes),
      pool_(options.pool != nullptr ? *options.pool : ThreadPool::Default()) {
  if (options_.num_sessions == 0) options_.num_sessions = 1;
  if (options_.enable_telemetry) {
    telemetry_ = std::make_unique<ServiceTelemetry>();
  }
  if (!options_.slow_query_log_path.empty()) {
    Status opened = slow_log_.Open(options_.slow_query_log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "warning: %s\n", opened.ToString().c_str());
    }
  }
  ingest::CompactorOptions compactor_options = options_.compactor;
  if (compactor_options.budget == nullptr && admission_budget_.limited()) {
    compactor_options.budget = &admission_budget_;
  }
  compactor_ = std::make_unique<ingest::Compactor>(&catalog_, &pool_,
                                                   compactor_options);
  sessions_.reserve(options_.num_sessions);
  for (size_t i = 0; i < options_.num_sessions; ++i) {
    sessions_.emplace_back([this] { SessionLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

uint64_t QueryService::RegisterTable(const std::string& name, Table table) {
  const uint64_t epoch = catalog_.RegisterTable(name, std::move(table));
  GarbageCollectDeadEpochs();
  ExportTableGauges(name);
  return epoch;
}

StatusOr<uint64_t> QueryService::RegisterTable(const std::string& name,
                                               Table table,
                                               const std::string& key_column) {
  StatusOr<uint64_t> epoch =
      catalog_.RegisterTable(name, std::move(table), key_column);
  if (!epoch.ok()) return epoch;
  GarbageCollectDeadEpochs();
  ExportTableGauges(name);
  return epoch;
}

StatusOr<Catalog::TableMeta> QueryService::AppendRows(const std::string& name,
                                                      const Table& rows) {
  const Clock::time_point start = Clock::now();
  StatusOr<Catalog::TableMeta> meta = catalog_.AppendRows(name, rows);
  if (!meta.ok()) return meta;
  obs::Add(obs::Counter::kIngestRowsAppended, rows.num_rows());
  obs::Add(obs::Counter::kIngestBatches);
  if (telemetry_ != nullptr) {
    telemetry_->ingest_batches.Record(
        SecondsToMicros(SecondsBetween(start, Clock::now())));
  }
  if (options_.auto_compact) compactor_->MaybeScheduleCompaction(name);
  return meta;
}

StatusOr<Catalog::TableMeta> QueryService::UpsertRows(const std::string& name,
                                                      const Table& rows) {
  const Clock::time_point start = Clock::now();
  StatusOr<Catalog::TableMeta> meta = catalog_.UpsertRows(name, rows);
  if (!meta.ok()) return meta;
  obs::Add(obs::Counter::kIngestRowsUpserted, rows.num_rows());
  obs::Add(obs::Counter::kIngestBatches);
  if (telemetry_ != nullptr) {
    telemetry_->ingest_batches.Record(
        SecondsToMicros(SecondsBetween(start, Clock::now())));
  }
  if (options_.auto_compact) compactor_->MaybeScheduleCompaction(name);
  return meta;
}

StatusOr<Catalog::TableMeta> QueryService::CompactTable(
    const std::string& name) {
  const Clock::time_point start = Clock::now();
  StatusOr<Catalog::TableMeta> meta = compactor_->CompactNow(name);
  if (telemetry_ != nullptr && meta.ok()) {
    telemetry_->compactions.Record(
        SecondsToMicros(SecondsBetween(start, Clock::now())));
  }
  return meta;
}

void QueryService::GarbageCollectDeadEpochs() {
  const std::vector<uint64_t> live = catalog_.LiveEpochs();
  const std::unordered_set<uint64_t> live_set(live.begin(), live.end());
  // Every cache key this service writes starts with "t<epoch>." — keys
  // that do not parse are foreign and left alone.
  const size_t dropped = cache_.EvictIf([&](const std::string& key) {
    if (key.empty() || key[0] != 't') return false;
    uint64_t epoch = 0;
    size_t i = 1;
    while (i < key.size() && key[i] >= '0' && key[i] <= '9') {
      epoch = epoch * 10 + static_cast<uint64_t>(key[i] - '0');
      ++i;
    }
    if (i == 1) return false;
    return live_set.find(epoch) == live_set.end();
  });
  cache_gc_dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

void QueryService::ExportTableGauges(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry_ == nullptr) return;
  if (std::find(gauge_tables_.begin(), gauge_tables_.end(), name) !=
      gauge_tables_.end()) {
    return;
  }
  gauge_tables_.push_back(name);
  auto table_gauge = [&](const char* metric, const char* help, auto getter) {
    registry_->AddGauge(metric, help, {{"table", name}},
                        [this, name, getter]() -> double {
                          StatusOr<Catalog::TableMeta> meta =
                              catalog_.PeekMeta(name);
                          if (!meta.ok()) return 0.0;
                          return static_cast<double>(getter(*meta));
                        });
  };
  table_gauge("hwf_catalog_epoch", "table registration epoch",
              [](const Catalog::TableMeta& m) { return m.epoch; });
  table_gauge("hwf_table_minor_version",
              "mutations applied within the table's current epoch",
              [](const Catalog::TableMeta& m) { return m.minor; });
  table_gauge("hwf_table_delta_rows",
              "rows buffered in the table's un-compacted delta",
              [](const Catalog::TableMeta& m) { return m.delta_rows; });
}

StatusOr<uint64_t> QueryService::Submit(std::string sql,
                                        QueryOptions options) {
  auto state = std::make_shared<QueryState>();
  state->sql = std::move(sql);
  state->options = options;
  state->admit_time = Clock::now();

  const double timeout = options.timeout_seconds < 0
                             ? options_.default_timeout_seconds
                             : options.timeout_seconds;
  if (timeout > 0) {
    state->stop.SetDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout)));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::InvalidArgument("service is shut down");
    }
    if (queue_.size() >= options_.max_queued) {
      ++rejected_;
      ++rejected_queue_full_;
      obs::Add(obs::Counter::kServiceQueriesRejected);
      obs::Add(obs::Counter::kServiceRejectedQueueFull);
      if (telemetry_ != nullptr) {
        constexpr size_t kRejected =
            static_cast<size_t>(QueryOutcome::kRejected);
        telemetry_->outcomes[kRejected].Record(0);
        telemetry_->outcome_counts[kRejected].fetch_add(
            1, std::memory_order_relaxed);
      }
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) +
          " queries queued)");
    }
    if (admission_budget_.limited()) {
      Status reserve = state->reservation.Reserve(
          &admission_budget_, options_.per_query_reservation_bytes);
      if (!reserve.ok()) {
        ++rejected_;
        ++rejected_memory_;
        obs::Add(obs::Counter::kServiceQueriesRejected);
        obs::Add(obs::Counter::kServiceRejectedMemory);
        if (telemetry_ != nullptr) {
          constexpr size_t kRejected =
              static_cast<size_t>(QueryOutcome::kRejected);
          telemetry_->outcomes[kRejected].Record(0);
          telemetry_->outcome_counts[kRejected].fetch_add(
              1, std::memory_order_relaxed);
        }
        return Status::ResourceExhausted(
            "admission memory budget exhausted: " + reserve.message());
      }
    }
    state->id = next_id_++;
    queries_[state->id] = state;
    queue_.push_back(state);
    peak_queued_ = std::max(peak_queued_, queue_.size());
    ++admitted_;
    obs::Add(obs::Counter::kServiceQueriesAdmitted);
  }
  queue_cv_.notify_one();
  return state->id;
}

Status QueryService::Cancel(uint64_t query_id) {
  std::shared_ptr<QueryState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::InvalidArgument("unknown query id " +
                                     std::to_string(query_id));
    }
    state = it->second;
  }
  state->stop.RequestStop();
  return Status::OK();
}

StatusOr<QueryResult> QueryService::Wait(uint64_t query_id) {
  std::shared_ptr<QueryState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::InvalidArgument("unknown query id " +
                                     std::to_string(query_id));
    }
    state = it->second;
    queries_.erase(it);
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done; });
  if (!state->status.ok()) return state->status;
  return std::move(state->result);
}

StatusOr<QueryResult> QueryService::Query(std::string sql,
                                          QueryOptions options) {
  StatusOr<uint64_t> id = Submit(std::move(sql), options);
  if (!id.ok()) return id.status();
  return Wait(*id);
}

QueryService::Stats QueryService::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queued = queue_.size();
    stats.peak_queued = peak_queued_;
    stats.executing = executing_;
    stats.admitted = admitted_;
    stats.rejected = rejected_;
    stats.rejected_queue_full = rejected_queue_full_;
    stats.rejected_memory = rejected_memory_;
    stats.cancelled = cancelled_;
    stats.completed = completed_;
    stats.slow_queries = slow_queries_;
  }
  stats.reserved_bytes = admission_budget_.reserved_bytes();
  stats.cache = cache_.stats();
  if (compactor_ != nullptr) stats.compaction = compactor_->stats();
  stats.cache_gc_dropped = cache_gc_dropped_.load(std::memory_order_relaxed);
  return stats;
}

std::string QueryService::StatsJson() const {
  const Stats s = stats();
  std::string out = "{";
  auto field = [&out](const char* name, uint64_t value, bool comma = true) {
    out += std::string("\"") + name + "\":" + std::to_string(value);
    if (comma) out += ",";
  };
  field("queued", s.queued);
  field("peak_queued", s.peak_queued);
  field("executing", s.executing);
  field("admitted", s.admitted);
  field("rejected", s.rejected);
  field("rejected_queue_full", s.rejected_queue_full);
  field("rejected_memory", s.rejected_memory);
  field("cancelled", s.cancelled);
  field("completed", s.completed);
  field("slow_queries", s.slow_queries);
  field("reserved_bytes", s.reserved_bytes);
  out += "\"cache\":{";
  field("hits", s.cache.hits);
  field("misses", s.cache.misses);
  field("evictions", s.cache.evictions);
  field("entries", s.cache.entries);
  field("bytes", s.cache.bytes);
  field("capacity_bytes", s.cache.capacity_bytes, /*comma=*/false);
  out += "},\"ingest\":{";
  field("compactions_scheduled", s.compaction.scheduled);
  field("compactions_completed", s.compaction.completed);
  field("compactions_failed", s.compaction.failed);
  out += "\"compaction_seconds\":";
  AppendDouble(&out, s.compaction.total_seconds);
  out += ",";
  field("cache_gc_dropped", s.cache_gc_dropped, /*comma=*/false);
  out += "}";
  if (telemetry_ != nullptr) {
    out += ",\"latency\":{";
    for (size_t i = 0; i < kNumQueryStages; ++i) {
      const obs::HistogramSnapshot snapshot = telemetry_->stages[i].Snapshot();
      if (i != 0) out += ",";
      out += std::string("\"") +
             QueryStageName(static_cast<QueryStage>(i)) + "\":{";
      out += "\"count\":" + std::to_string(snapshot.count);
      out += ",\"p50_seconds\":";
      AppendDouble(&out, snapshot.Quantile(0.5) * 1e-6);
      out += ",\"p99_seconds\":";
      AppendDouble(&out, snapshot.Quantile(0.99) * 1e-6);
      out += "}";
    }
    out += "},\"outcomes\":{";
    for (size_t i = 0; i < kNumQueryOutcomes; ++i) {
      if (i != 0) out += ",";
      out += std::string("\"") +
             QueryOutcomeName(static_cast<QueryOutcome>(i)) + "\":" +
             std::to_string(telemetry_->outcome_counts[i].load(
                 std::memory_order_relaxed));
    }
    out += "}";
  }
  out += "}\n";
  return out;
}

void QueryService::RegisterMetrics(obs::MetricsRegistry* registry) {
  auto gauge = [&](const char* name, const char* help, auto getter) {
    registry->AddGauge(name, help, {}, [this, getter] {
      return static_cast<double>(getter(stats()));
    });
  };
  gauge("hwf_service_queued", "queries admitted but not yet executing",
        [](const Stats& s) { return s.queued; });
  gauge("hwf_service_queue_peak", "high-water mark of the admission queue",
        [](const Stats& s) { return s.peak_queued; });
  gauge("hwf_service_executing", "queries currently executing",
        [](const Stats& s) { return s.executing; });
  gauge("hwf_service_reserved_bytes", "live admission reservations in bytes",
        [](const Stats& s) { return s.reserved_bytes; });
  gauge("hwf_service_cache_bytes", "bytes held by the tree cache",
        [](const Stats& s) { return s.cache.bytes; });
  gauge("hwf_service_cache_entries", "entries held by the tree cache",
        [](const Stats& s) { return s.cache.entries; });
  gauge("hwf_service_cache_capacity_bytes", "tree cache capacity in bytes",
        [](const Stats& s) { return s.cache.capacity_bytes; });

  auto counter = [&](const char* name, const char* help, auto getter) {
    registry->AddCounter(name, help, {}, [this, getter] {
      return static_cast<double>(getter(stats()));
    });
  };
  counter("hwf_service_cache_hits_total", "tree cache hits",
          [](const Stats& s) { return s.cache.hits; });
  counter("hwf_service_cache_misses_total", "tree cache misses",
          [](const Stats& s) { return s.cache.misses; });
  counter("hwf_service_cache_evictions_total", "tree cache evictions",
          [](const Stats& s) { return s.cache.evictions; });
  counter("hwf_service_slow_queries_total",
          "queries at or over the slow-query threshold",
          [](const Stats& s) { return s.slow_queries; });
  // Note: the mutation counts themselves (hwf_ingest_rows_appended_total,
  // hwf_ingest_rows_upserted_total, hwf_ingest_compactions_total, ...) are
  // process-wide obs counters exported by obs::RegisterProcessCounters;
  // registering them here as well would duplicate the series.
  counter("hwf_service_cache_gc_dropped_total",
          "dead-epoch cache entries garbage-collected",
          [](const Stats& s) { return s.cache_gc_dropped; });
  registry->AddCounter("hwf_ingest_compaction_seconds_total",
                       "total seconds spent compacting", {}, [this] {
                         return compactor_ != nullptr
                                    ? compactor_->stats().total_seconds
                                    : 0.0;
                       });
  registry->AddCounter("hwf_service_rejected_by_cause_total",
                       "admission rejections by cause",
                       {{"cause", "queue_full"}}, [this] {
                         return static_cast<double>(
                             stats().rejected_queue_full);
                       });
  registry->AddCounter("hwf_service_rejected_by_cause_total",
                       "admission rejections by cause", {{"cause", "memory"}},
                       [this] {
                         return static_cast<double>(stats().rejected_memory);
                       });

  {
    std::lock_guard<std::mutex> lock(mutex_);
    registry_ = registry;
  }
  for (const std::string& name : catalog_.TableNames()) {
    ExportTableGauges(name);
  }

  if (telemetry_ == nullptr) return;
  registry->AddSummary("hwf_ingest_batch_seconds",
                       "APPEND/UPSERT batch application latency", {},
                       &telemetry_->ingest_batches, 1e-6);
  registry->AddSummary("hwf_ingest_compaction_seconds",
                       "synchronous compaction latency", {},
                       &telemetry_->compactions, 1e-6);
  for (size_t i = 0; i < kNumQueryOutcomes; ++i) {
    registry->AddCounter(
        "hwf_service_queries_by_outcome_total", "finished queries by outcome",
        {{"outcome", QueryOutcomeName(static_cast<QueryOutcome>(i))}},
        [this, i] {
          return static_cast<double>(
              telemetry_->outcome_counts[i].load(std::memory_order_relaxed));
        });
  }
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    registry->AddSummary(
        "hwf_query_stage_seconds", "query latency by lifecycle stage",
        {{"stage", QueryStageName(static_cast<QueryStage>(i))}},
        &telemetry_->stages[i], 1e-6);
  }
  for (size_t i = 0; i < kNumQueryOutcomes; ++i) {
    registry->AddSummary(
        "hwf_query_outcome_seconds",
        "admission-to-completion latency by outcome",
        {{"outcome", QueryOutcomeName(static_cast<QueryOutcome>(i))}},
        &telemetry_->outcomes[i], 1e-6);
  }
}

void QueryService::Shutdown() {
  std::deque<std::shared_ptr<QueryState>> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    drained.swap(queue_);
  }
  queue_cv_.notify_all();
  // Cancel in-flight compactions first: they run on the shared pool and a
  // stuck fold must not block the session join below.
  if (compactor_ != nullptr) compactor_->Stop();
  // Queued-but-never-started queries fail over to Cancelled so waiters
  // are not stranded.
  for (const std::shared_ptr<QueryState>& state : drained) {
    state->stop.RequestStop();
    FinishQuery(*state, Status::Cancelled("service shut down"), QueryResult{});
  }
  for (std::thread& session : sessions_) {
    if (session.joinable()) session.join();
  }
  sessions_.clear();
  // Every in-flight query has finished and recorded; the log can close
  // with no truncated lines.
  slow_log_.Close();
}

void QueryService::SessionLoop() {
  for (;;) {
    std::shared_ptr<QueryState> state;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      state = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }
    state->dequeue_time = Clock::now();
    state->dequeued = true;
    // Rebase the counter baseline to the start of execution so the delta
    // at finish excludes time spent queued (other queries ran meanwhile).
    state->counters.Rebase();

    Status status;
    {
      // Install the query's token for the whole execution: ParallelFor
      // re-installs it on every pool worker, so cancellation reaches
      // every morsel without explicit plumbing. The ambient query id rides
      // the same way (ThreadPool::Submit re-installs it), attributing every
      // span recorded on any thread on the query's behalf.
      ScopedStopToken scope(state->stop.token());
      obs::ScopedQueryId query_scope(state->id);
      HWF_TRACE_SCOPE_ARG("service.query", "query", state->id);
      status = ExecuteQuery(*state);
    }
    FinishQuery(*state, std::move(status), std::move(state->result));

    std::lock_guard<std::mutex> lock(mutex_);
    --executing_;
  }
}

Status QueryService::ExecuteQuery(QueryState& state) {
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  const Clock::time_point parse_start = Clock::now();
  StatusOr<ParsedStatement> statement = ParseStatement(state.sql);
  if (!statement.ok()) return statement.status();

  StatusOr<Catalog::Snapshot> snapshot = catalog_.Lookup(statement->table_name);
  if (!snapshot.ok()) return snapshot.status();
  const Table& table = *snapshot->table;

  StatusOr<PlannedQuery> plan = BindStatement(*statement, table);
  state.parse_plan_seconds = SecondsBetween(parse_start, Clock::now());
  if (!plan.ok()) return plan.status();
  state.plan_groups = plan->groups.size();

  auto profile = std::make_shared<obs::ExecutionProfile>();
  const bool cache_on = options_.enable_cache &&
                        options_.cache_capacity_bytes > 0 &&
                        state.options.use_cache &&
                        options_.query_memory_limit_bytes == 0;

  // Evaluate every spec group in one executor call: the shared-sort
  // optimizer sequences the groups (BindStatement already emits them in
  // sharing order) so covered specs reuse a producer's sort instead of
  // paying their own, and the sharing plan lands in the profile's plan
  // text for --explain.
  WindowExecutorOptions exec = options_.executor;
  exec.memory_limit_bytes = options_.query_memory_limit_bytes;
  if (cache_on) {
    exec.tree_cache = &cache_;
    // Content-addressed coordinates (see WindowExecutorOptions): the
    // epoch identifies the registration, gen the in-place rewrite
    // generation, and the row count pins this snapshot's exact id set —
    // together they make every derived key exact across appends and
    // compactions.
    const std::string content = "t" + std::to_string(snapshot->epoch) +
                                ".g" + std::to_string(snapshot->gen);
    exec.cache_key = content + ".n" + std::to_string(table.num_rows());
    exec.content_cache_key = content;
    if (snapshot->delta_rows > 0 && snapshot->base_rows > 0) {
      exec.delta_base_rows = snapshot->base_rows;
      exec.delta_base_key =
          content + ".n" + std::to_string(snapshot->base_rows);
    }
  }
  exec.profile = profile.get();
  std::vector<WindowSpecGroup> exec_groups;
  exec_groups.reserve(plan->groups.size());
  for (const PlannedGroup& group : plan->groups) {
    exec_groups.push_back(WindowSpecGroup{&group.spec, group.calls});
  }
  StatusOr<std::vector<std::vector<Column>>> group_columns =
      EvaluateWindowSpecGroups(table, exec_groups, exec, pool_);
  if (!group_columns.ok()) return group_columns.status();

  // Results land in select-list order via the recorded output slots.
  std::vector<std::optional<Column>> slots(plan->output_names.size());
  for (size_t g = 0; g < plan->groups.size(); ++g) {
    const PlannedGroup& group = plan->groups[g];
    std::vector<Column>& columns = (*group_columns)[g];
    for (size_t i = 0; i < columns.size(); ++i) {
      slots[group.output_slots[i]] = std::move(columns[i]);
    }
  }
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  QueryResult result;
  for (size_t slot = 0; slot < slots.size(); ++slot) {
    result.table.AddColumn(plan->output_names[slot],
                           std::move(*slots[slot]));
  }
  result.profile = std::move(profile);
  result.query_id = state.id;
  state.result = std::move(result);
  return Status::OK();
}

void QueryService::FinishQuery(QueryState& state, Status status,
                               QueryResult result) {
  // Release the admission reservation before publishing completion:
  // a waiter observing "done" must also observe the budget returned.
  state.reservation.Release();
  QueryOutcome outcome = QueryOutcome::kError;
  if (status.ok()) {
    outcome = QueryOutcome::kOk;
  } else if (status.code() == StatusCode::kCancelled) {
    outcome = QueryOutcome::kCancelled;
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    outcome = QueryOutcome::kDeadline;
  }
  const bool was_cancelled = outcome == QueryOutcome::kCancelled ||
                             outcome == QueryOutcome::kDeadline;
  RecordOutcome(state, outcome, result);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (was_cancelled) {
      ++cancelled_;
    } else {
      ++completed_;
    }
  }
  obs::Add(was_cancelled ? obs::Counter::kServiceQueriesCancelled
                         : obs::Counter::kServiceQueriesCompleted);
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.status = std::move(status);
    state.result = std::move(result);
    state.done = true;
  }
  state.cv.notify_all();
}

void QueryService::RecordOutcome(const QueryState& state, QueryOutcome outcome,
                                 const QueryResult& result) {
  const Clock::time_point now = Clock::now();
  const double total_seconds = SecondsBetween(state.admit_time, now);
  const double queue_wait_seconds =
      state.dequeued ? SecondsBetween(state.admit_time, state.dequeue_time)
                     : total_seconds;
  const double exec_seconds = total_seconds - queue_wait_seconds;
  const obs::ExecutionProfile* profile = result.profile.get();

  if (telemetry_ != nullptr) {
    auto stage = [&](QueryStage s) -> obs::LatencyHistogram& {
      return telemetry_->stages[static_cast<size_t>(s)];
    };
    stage(QueryStage::kQueueWait).Record(SecondsToMicros(queue_wait_seconds));
    stage(QueryStage::kTotal).Record(SecondsToMicros(total_seconds));
    if (state.dequeued) {
      stage(QueryStage::kParsePlan)
          .Record(SecondsToMicros(state.parse_plan_seconds));
    }
    if (profile != nullptr) {
      using obs::ProfilePhase;
      stage(QueryStage::kSort).Record(SecondsToMicros(
          profile->phase_seconds(ProfilePhase::kPartition) +
          profile->phase_seconds(ProfilePhase::kSort) +
          profile->phase_seconds(ProfilePhase::kPreprocess)));
      stage(QueryStage::kTreeBuild).Record(SecondsToMicros(
          profile->phase_seconds(ProfilePhase::kTreeBuild)));
      stage(QueryStage::kProbe).Record(SecondsToMicros(
          profile->phase_seconds(ProfilePhase::kFrameResolve) +
          profile->phase_seconds(ProfilePhase::kProbe)));
    }
    const size_t slot = static_cast<size_t>(outcome);
    telemetry_->outcomes[slot].Record(SecondsToMicros(total_seconds));
    telemetry_->outcome_counts[slot].fetch_add(1, std::memory_order_relaxed);
  }

  const bool retain = options_.retained_profiles > 0;
  const bool slow = slow_log_.enabled() &&
                    total_seconds >= options_.slow_query_seconds;
  if (!retain && !slow) return;

  RetainedQuery record;
  record.id = state.id;
  record.sql = state.sql;
  record.outcome = outcome;
  record.total_seconds = total_seconds;
  record.queue_wait_seconds = queue_wait_seconds;
  record.exec_seconds = exec_seconds;
  record.parse_plan_seconds = state.parse_plan_seconds;
  record.plan_groups = state.plan_groups;
  record.cache_hits = state.counters.DeltaOf(obs::Counter::kCacheHits);
  record.cache_misses = state.counters.DeltaOf(obs::Counter::kCacheMisses);
  record.peak_reserved_bytes =
      profile != nullptr ? profile->peak_reserved_bytes() : 0;
  record.profile = result.profile;

  if (slow) {
    slow_log_.Append(RetainedQueryJson(record));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (slow) ++slow_queries_;
  if (retain) {
    retained_.push_back(std::move(record));
    while (retained_.size() > options_.retained_profiles) {
      retained_.pop_front();
    }
  }
}

std::string QueryService::RetainedQueryJson(const RetainedQuery& record) {
  std::string out = "{\"query_id\": " + std::to_string(record.id);
  out += ", \"sql\": \"" + obs::JsonEscaped(record.sql) + "\"";
  out += std::string(", \"outcome\": \"") + QueryOutcomeName(record.outcome) +
         "\"";
  out += ", \"total_seconds\": ";
  AppendDouble(&out, record.total_seconds);
  out += ", \"queue_wait_seconds\": ";
  AppendDouble(&out, record.queue_wait_seconds);
  out += ", \"exec_seconds\": ";
  AppendDouble(&out, record.exec_seconds);
  out += ", \"parse_plan_seconds\": ";
  AppendDouble(&out, record.parse_plan_seconds);
  out += ", \"groups\": " + std::to_string(record.plan_groups);
  out += ", \"cache_hits\": " + std::to_string(record.cache_hits);
  out += ", \"cache_misses\": " + std::to_string(record.cache_misses);
  out += ", \"peak_reserved_bytes\": " +
         std::to_string(record.peak_reserved_bytes);
  out += ", \"profile\": ";
  out += record.profile != nullptr ? record.profile->ToJson() : "null";
  out += "}";
  return out;
}

StatusOr<std::string> QueryService::RetainedProfileJson(
    uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
    if (it->id == query_id) return RetainedQueryJson(*it);
  }
  return Status::InvalidArgument("no retained profile for query id " +
                                 std::to_string(query_id) +
                                 " (never finished, or aged out of retention)");
}

}  // namespace service
}  // namespace hwf
