#include "service/service.h"

#include <chrono>
#include <optional>
#include <utility>

#include "obs/counters.h"

namespace hwf {
namespace service {

/// Everything the service tracks about one query. The result slot is
/// guarded by `mutex`; the StopSource is wait-free and shared with the
/// executing session via the ambient-token mechanism.
struct QueryService::QueryState {
  uint64_t id = 0;
  std::string sql;
  QueryOptions options;
  StopSource stop;
  /// Admission reservation; held from Submit until the query finishes
  /// (success, error or cancellation), then released before the waiter
  /// is woken so "done" implies "budget returned".
  mem::MemoryReservation reservation;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status status;
  QueryResult result;
};

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      cache_(options.enable_cache ? options.cache_capacity_bytes : 0),
      admission_budget_(options.memory_limit_bytes),
      pool_(options.pool != nullptr ? *options.pool : ThreadPool::Default()) {
  if (options_.num_sessions == 0) options_.num_sessions = 1;
  sessions_.reserve(options_.num_sessions);
  for (size_t i = 0; i < options_.num_sessions; ++i) {
    sessions_.emplace_back([this] { SessionLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

uint64_t QueryService::RegisterTable(const std::string& name, Table table) {
  return catalog_.RegisterTable(name, std::move(table));
}

StatusOr<uint64_t> QueryService::Submit(std::string sql,
                                        QueryOptions options) {
  auto state = std::make_shared<QueryState>();
  state->sql = std::move(sql);
  state->options = options;

  const double timeout = options.timeout_seconds < 0
                             ? options_.default_timeout_seconds
                             : options.timeout_seconds;
  if (timeout > 0) {
    state->stop.SetDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout)));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::InvalidArgument("service is shut down");
    }
    if (queue_.size() >= options_.max_queued) {
      ++rejected_;
      obs::Add(obs::Counter::kServiceQueriesRejected);
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) +
          " queries queued)");
    }
    if (admission_budget_.limited()) {
      Status reserve = state->reservation.Reserve(
          &admission_budget_, options_.per_query_reservation_bytes);
      if (!reserve.ok()) {
        ++rejected_;
        obs::Add(obs::Counter::kServiceQueriesRejected);
        return Status::ResourceExhausted(
            "admission memory budget exhausted: " + reserve.message());
      }
    }
    state->id = next_id_++;
    queries_[state->id] = state;
    queue_.push_back(state);
    ++admitted_;
    obs::Add(obs::Counter::kServiceQueriesAdmitted);
  }
  queue_cv_.notify_one();
  return state->id;
}

Status QueryService::Cancel(uint64_t query_id) {
  std::shared_ptr<QueryState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::InvalidArgument("unknown query id " +
                                     std::to_string(query_id));
    }
    state = it->second;
  }
  state->stop.RequestStop();
  return Status::OK();
}

StatusOr<QueryResult> QueryService::Wait(uint64_t query_id) {
  std::shared_ptr<QueryState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::InvalidArgument("unknown query id " +
                                     std::to_string(query_id));
    }
    state = it->second;
    queries_.erase(it);
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done; });
  if (!state->status.ok()) return state->status;
  return std::move(state->result);
}

StatusOr<QueryResult> QueryService::Query(std::string sql,
                                          QueryOptions options) {
  StatusOr<uint64_t> id = Submit(std::move(sql), options);
  if (!id.ok()) return id.status();
  return Wait(*id);
}

QueryService::Stats QueryService::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queued = queue_.size();
    stats.executing = executing_;
    stats.admitted = admitted_;
    stats.rejected = rejected_;
    stats.cancelled = cancelled_;
    stats.completed = completed_;
  }
  stats.reserved_bytes = admission_budget_.reserved_bytes();
  stats.cache = cache_.stats();
  return stats;
}

void QueryService::Shutdown() {
  std::deque<std::shared_ptr<QueryState>> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    drained.swap(queue_);
  }
  queue_cv_.notify_all();
  // Queued-but-never-started queries fail over to Cancelled so waiters
  // are not stranded.
  for (const std::shared_ptr<QueryState>& state : drained) {
    state->stop.RequestStop();
    FinishQuery(*state, Status::Cancelled("service shut down"), QueryResult{});
  }
  for (std::thread& session : sessions_) {
    if (session.joinable()) session.join();
  }
  sessions_.clear();
}

void QueryService::SessionLoop() {
  for (;;) {
    std::shared_ptr<QueryState> state;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      state = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }

    Status status;
    {
      // Install the query's token for the whole execution: ParallelFor
      // re-installs it on every pool worker, so cancellation reaches
      // every morsel without explicit plumbing.
      ScopedStopToken scope(state->stop.token());
      status = ExecuteQuery(*state);
    }
    FinishQuery(*state, std::move(status), std::move(state->result));

    std::lock_guard<std::mutex> lock(mutex_);
    --executing_;
  }
}

Status QueryService::ExecuteQuery(QueryState& state) {
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  StatusOr<ParsedStatement> statement = ParseStatement(state.sql);
  if (!statement.ok()) return statement.status();

  StatusOr<Catalog::Snapshot> snapshot = catalog_.Lookup(statement->table_name);
  if (!snapshot.ok()) return snapshot.status();
  const Table& table = *snapshot->table;

  StatusOr<PlannedQuery> plan = BindStatement(*statement, table);
  if (!plan.ok()) return plan.status();

  auto profile = std::make_shared<obs::ExecutionProfile>();
  const bool cache_on = options_.enable_cache &&
                        options_.cache_capacity_bytes > 0 &&
                        state.options.use_cache &&
                        options_.query_memory_limit_bytes == 0;

  // Evaluate each spec group with one shared partition/sort pass. Results
  // land in select-list order via the recorded output slots.
  std::vector<std::optional<Column>> slots(plan->output_names.size());
  bool first_group = true;
  for (const PlannedGroup& group : plan->groups) {
    if (Status stop = CheckStop(); !stop.ok()) return stop;
    WindowExecutorOptions exec = options_.executor;
    exec.memory_limit_bytes = options_.query_memory_limit_bytes;
    if (cache_on) {
      exec.tree_cache = &cache_;
      // The epoch is globally monotonic, so it alone identifies the table
      // version; the spec/call structure is appended by the executor.
      exec.cache_key = "t" + std::to_string(snapshot->epoch);
    }
    // The executor clears its profile on entry, so only the first group
    // writes into the query profile directly; later groups run with a
    // scratch profile that is merged in afterwards.
    obs::ExecutionProfile scratch;
    exec.profile = first_group ? profile.get() : &scratch;
    StatusOr<std::vector<Column>> columns = EvaluateWindowFunctions(
        table, group.spec, group.calls, exec, pool_);
    if (!columns.ok()) return columns.status();
    for (size_t i = 0; i < columns->size(); ++i) {
      slots[group.output_slots[i]] = std::move((*columns)[i]);
    }
    if (!first_group) {
      for (size_t p = 0; p < obs::kNumProfilePhases; ++p) {
        const auto phase = static_cast<obs::ProfilePhase>(p);
        profile->AddPhaseSeconds(phase, scratch.phase_seconds(phase));
      }
      profile->SetTotalSeconds(profile->total_seconds() +
                               scratch.total_seconds());
    }
    first_group = false;
  }
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  QueryResult result;
  for (size_t slot = 0; slot < slots.size(); ++slot) {
    result.table.AddColumn(plan->output_names[slot],
                           std::move(*slots[slot]));
  }
  result.profile = std::move(profile);
  state.result = std::move(result);
  return Status::OK();
}

void QueryService::FinishQuery(QueryState& state, Status status,
                               QueryResult result) {
  // Release the admission reservation before publishing completion:
  // a waiter observing "done" must also observe the budget returned.
  state.reservation.Release();
  const bool was_cancelled = status.code() == StatusCode::kCancelled ||
                             status.code() == StatusCode::kDeadlineExceeded;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (was_cancelled) {
      ++cancelled_;
    } else {
      ++completed_;
    }
  }
  obs::Add(was_cancelled ? obs::Counter::kServiceQueriesCancelled
                         : obs::Counter::kServiceQueriesCompleted);
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.status = std::move(status);
    state.result = std::move(result);
    state.done = true;
  }
  state.cv.notify_all();
}

}  // namespace service
}  // namespace hwf
