#ifndef HWF_SERVICE_RESULT_FORMAT_H_
#define HWF_SERVICE_RESULT_FORMAT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/table.h"

namespace hwf {
namespace service {

/// Wire formats for query results. Shared between the query service, the
/// TCP front door and hwf_cli --format.
enum class ResultFormat {
  kCsv,   // RFC-4180 CSV with a header row (storage/csv.h)
  kJson,  // {"columns":[...],"rows":[[...],...]} — NULL as null, strings
          // escaped, doubles rendered round-trip-exactly
};

/// Parses "csv" / "json" (case-insensitive).
StatusOr<ResultFormat> ParseResultFormat(std::string_view name);

/// Serializes a table in the requested format. The output always ends
/// with a newline, so line-oriented clients can frame on byte count.
std::string FormatTable(const Table& table, ResultFormat format);

/// Maps a Status to a distinct process exit code, shared by the CLI tools:
/// 0 OK, 3 InvalidArgument, 4 OutOfRange, 5 NotImplemented,
/// 6 TypeMismatch, 7 Internal, 8 ResourceExhausted, 9 Cancelled,
/// 10 DeadlineExceeded. (2 is reserved for usage errors, 1 for unmapped
/// failures, matching conventional CLI practice.)
int ExitCodeForStatus(const Status& status);

}  // namespace service
}  // namespace hwf

#endif  // HWF_SERVICE_RESULT_FORMAT_H_
