#ifndef HWF_SERVICE_SERVICE_H_
#define HWF_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"
#include "ingest/compactor.h"
#include "mem/memory_budget.h"
#include "mst/tree_cache.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/profile.h"
#include "obs/slow_query_log.h"
#include "parallel/thread_pool.h"
#include "service/catalog.h"
#include "service/sql_parser.h"
#include "storage/table.h"
#include "window/executor.h"

namespace hwf {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace service {

/// Lifecycle stages a query's latency is attributed to. Stage histograms
/// answer "where does time go" per stage across all queries; kTotal is
/// admission-to-completion wall time (includes queue wait).
enum class QueryStage : size_t {
  kQueueWait,   // admission -> dequeued by a session
  kParsePlan,   // parse + bind
  kSort,        // executor kPartition+kSort+kPreprocess (order pipeline)
  kTreeBuild,   // executor kTreeBuild
  kProbe,       // executor kFrameResolve+kProbe
  kTotal,       // admission -> finished
  kNumStages,
};
inline constexpr size_t kNumQueryStages =
    static_cast<size_t>(QueryStage::kNumStages);

/// Stable label of a stage ("queue_wait", "parse_plan", ...).
const char* QueryStageName(QueryStage stage);

/// How a query left the service.
enum class QueryOutcome : size_t {
  kOk,
  kCancelled,  // client Cancel or shutdown
  kDeadline,   // deadline exceeded
  kError,      // parse/bind/execution error
  kRejected,   // refused at admission (never entered the queue)
  kNumOutcomes,
};
inline constexpr size_t kNumQueryOutcomes =
    static_cast<size_t>(QueryOutcome::kNumOutcomes);

/// Stable label of an outcome ("ok", "cancelled", ...).
const char* QueryOutcomeName(QueryOutcome outcome);

/// Per-service latency histograms (microsecond resolution) and outcome
/// tallies. Recording is lock-free; snapshots are taken per scrape.
/// Heap-allocated by the service (the bucket arrays are a few hundred KB).
struct ServiceTelemetry {
  /// Latency per lifecycle stage, all outcomes combined, in microseconds.
  obs::LatencyHistogram stages[kNumQueryStages];
  /// Admission-to-completion latency per outcome, in microseconds.
  obs::LatencyHistogram outcomes[kNumQueryOutcomes];
  std::atomic<uint64_t> outcome_counts[kNumQueryOutcomes] = {};
  /// Streaming-ingest latency: APPEND/UPSERT batch application and
  /// delta-into-base compaction, in microseconds.
  obs::LatencyHistogram ingest_batches;
  obs::LatencyHistogram compactions;
};

struct ServiceOptions {
  /// Session worker threads: the number of queries executing concurrently.
  /// Each executing query additionally fans out over the shared pool.
  size_t num_sessions = 2;

  /// Admitted-but-not-yet-executing queries the service will hold. A full
  /// queue rejects new submissions with ResourceExhausted (admission
  /// control) instead of building an unbounded backlog.
  size_t max_queued = 16;

  /// Service-wide admission budget (0 = unlimited). Every admitted query
  /// reserves `per_query_reservation_bytes` from it for its lifetime;
  /// when the budget cannot cover another reservation, the submission is
  /// rejected with ResourceExhausted.
  size_t memory_limit_bytes = 0;
  size_t per_query_reservation_bytes = 64ull << 20;

  /// Per-query execution budget handed to the executor (0 = unlimited;
  /// non-zero forces the spill paths and disables the tree cache for the
  /// query, see WindowExecutorOptions).
  size_t query_memory_limit_bytes = 0;

  /// Cross-query build-artifact cache capacity (0 disables reuse; the
  /// code path is identical, every lookup just misses).
  size_t cache_capacity_bytes = 256ull << 20;
  bool enable_cache = true;

  /// Default per-query deadline in seconds (0 = none). Queries past the
  /// deadline unwind cooperatively with DeadlineExceeded.
  double default_timeout_seconds = 0;

  /// Execution pool shared by all sessions; nullptr = ThreadPool::Default().
  ThreadPool* pool = nullptr;

  /// Records per-stage / per-outcome latency histograms and retains recent
  /// query profiles. Off only for overhead measurement (the record path is
  /// a handful of relaxed atomics per query).
  bool enable_telemetry = true;

  /// JSON-lines slow-query log ("" disables). Queries whose
  /// admission-to-completion time reaches `slow_query_seconds` append one
  /// record (sql, outcome, queue wait, phase breakdown, cache activity,
  /// peak memory).
  std::string slow_query_log_path;
  double slow_query_seconds = 0.1;

  /// Finished-query profiles retained for PROFILE <id> lookups (ring of
  /// the most recent N; 0 disables retention).
  size_t retained_profiles = 64;

  /// Engine/tree tuning forwarded to the executor. `memory_limit_bytes`,
  /// `tree_cache`, `cache_key` and `profile` are overridden per query.
  WindowExecutorOptions executor;

  /// Streaming-ingest compaction policy (ratio, floor). The compactor's
  /// budget pointer is overridden to the service admission budget when one
  /// is configured. `auto_compact` gates the background scheduling that
  /// follows each APPEND/UPSERT batch; explicit CompactTable calls work
  /// either way.
  ingest::CompactorOptions compactor;
  bool auto_compact = true;
};

struct QueryOptions {
  /// Seconds until the query's deadline; <0 = service default, 0 = none.
  double timeout_seconds = -1;
  /// Allows a client to opt out of cached build artifacts.
  bool use_cache = true;
};

struct QueryResult {
  /// One column per select item, aligned with the source table's rows.
  Table table;
  /// The execution's cost breakdown (phase timings summed over the
  /// query's spec groups). Shared-ptr because ExecutionProfile is pinned.
  std::shared_ptr<obs::ExecutionProfile> profile;
  /// The service-assigned id, echoed so clients can correlate results
  /// with traces, the slow-query log and PROFILE lookups.
  uint64_t query_id = 0;
};

/// The in-process query service: SQL front-end, admission control,
/// cooperative cancellation and cross-query merge-sort-tree reuse.
///
/// Lifecycle of a query:
///   Submit(sql)  — admission: bounded queue + memory reservation; returns
///                  a query id or ResourceExhausted immediately.
///   [session]    — a worker parses, plans and executes the query on the
///                  shared thread pool, under the query's StopToken.
///   Cancel(id)   — requests cooperative stop; the query unwinds at the
///                  next morsel/phase boundary with Cancelled and its
///                  admission reservation is released.
///   Wait(id)     — blocks for the result (or the error) and forgets the
///                  query. Each id can be waited on exactly once.
///
/// Query(sql) is the synchronous convenience wrapper. All methods are
/// thread-safe; the destructor cancels queued work and joins the sessions.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers (or replaces) a table; returns its version epoch. Running
  /// queries keep executing against the snapshot they started with.
  /// Re-registration retires the old epoch: its cached artifacts are
  /// garbage-collected from the tree cache immediately.
  uint64_t RegisterTable(const std::string& name, Table table);

  /// As above, declaring `key_column` as the UPSERT key.
  StatusOr<uint64_t> RegisterTable(const std::string& name, Table table,
                                   const std::string& key_column);

  /// Streaming ingest: appends `rows` to the table's delta buffer (same
  /// schema, coercions per ingest::DeltaTable). O(batch); cached artifacts
  /// for existing data stay valid and warm queries stay probe-only. May
  /// schedule a background compaction past the configured ratio.
  StatusOr<Catalog::TableMeta> AppendRows(const std::string& name,
                                          const Table& rows);

  /// Keyed upsert (requires a key column declared at registration).
  StatusOr<Catalog::TableMeta> UpsertRows(const std::string& name,
                                          const Table& rows);

  /// Synchronously folds the table's delta into its base (row ids, epoch
  /// and gen unchanged — cached artifacts all survive).
  StatusOr<Catalog::TableMeta> CompactTable(const std::string& name);

  StatusOr<uint64_t> Submit(std::string sql, QueryOptions options = {});
  Status Cancel(uint64_t query_id);
  StatusOr<QueryResult> Wait(uint64_t query_id);
  StatusOr<QueryResult> Query(std::string sql, QueryOptions options = {});

  struct Stats {
    size_t queued = 0;
    size_t peak_queued = 0;  // high-water mark since construction
    size_t executing = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_memory = 0;
    uint64_t cancelled = 0;
    uint64_t completed = 0;
    uint64_t slow_queries = 0;  // queries at/over the slow threshold
    size_t reserved_bytes = 0;  // live admission reservations
    mst::TreeCache::Stats cache;
    ingest::Compactor::Stats compaction;
    uint64_t cache_gc_dropped = 0;  // dead-epoch entries evicted so far
  };
  Stats stats() const;

  /// stats() plus histogram summaries (p50/p99 per stage) as one JSON
  /// object — the payload behind the protocol's STATS command.
  std::string StatsJson() const;

  /// Registers this service's gauges, counters and latency summaries on
  /// `registry`. The registry must not outlive the service.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// The retained record of a finished query as JSON (query_id, sql,
  /// outcome, stage timings, phase profile), or NotFound once it has
  /// aged out of the retention ring.
  StatusOr<std::string> RetainedProfileJson(uint64_t query_id) const;

  /// Telemetry sink, shared with tests; null when telemetry is disabled.
  const ServiceTelemetry* telemetry() const { return telemetry_.get(); }

  mst::TreeCache& cache() { return cache_; }
  Catalog& catalog() { return catalog_; }
  ingest::Compactor& compactor() { return *compactor_; }
  const ServiceOptions& options() const { return options_; }

  /// Stops accepting work, cancels queued queries and joins the session
  /// threads. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct QueryState;

  /// One finished query's retained telemetry record (PROFILE <id> and the
  /// slow-query log both serialize from it).
  struct RetainedQuery {
    uint64_t id = 0;
    std::string sql;
    QueryOutcome outcome = QueryOutcome::kOk;
    double total_seconds = 0;
    double queue_wait_seconds = 0;
    double exec_seconds = 0;
    double parse_plan_seconds = 0;
    size_t plan_groups = 0;
    uint64_t cache_hits = 0;    // this query's cache activity
    uint64_t cache_misses = 0;
    size_t peak_reserved_bytes = 0;
    std::shared_ptr<obs::ExecutionProfile> profile;  // null for non-ok
  };

  void SessionLoop();
  /// Drops cached artifacts keyed on epochs no longer in the catalog
  /// (called after re-registration; without it the old version's trees
  /// linger until byte-pressure eviction reaches them).
  void GarbageCollectDeadEpochs();
  /// Adds the per-table version gauges for `name` if a registry is
  /// attached and they are not already exported.
  void ExportTableGauges(const std::string& name);
  Status ExecuteQuery(QueryState& state);
  void FinishQuery(QueryState& state, Status status, QueryResult result);
  void RecordOutcome(const QueryState& state, QueryOutcome outcome,
                     const QueryResult& result);
  static std::string RetainedQueryJson(const RetainedQuery& record);

  ServiceOptions options_;
  Catalog catalog_;
  mst::TreeCache cache_;
  mem::MemoryBudget admission_budget_;
  ThreadPool& pool_;
  std::unique_ptr<ServiceTelemetry> telemetry_;
  obs::SlowQueryLog slow_log_;
  std::unique_ptr<ingest::Compactor> compactor_;

  /// Metrics registry attached via RegisterMetrics (null before); used to
  /// export per-table gauges for tables registered after attachment.
  obs::MetricsRegistry* registry_ = nullptr;
  std::vector<std::string> gauge_tables_;  // Tables with gauges exported.
  std::atomic<uint64_t> cache_gc_dropped_{0};

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<QueryState>> queue_;
  std::unordered_map<uint64_t, std::shared_ptr<QueryState>> queries_;
  std::deque<RetainedQuery> retained_;  // ring of the most recent finishes
  uint64_t next_id_ = 1;
  size_t executing_ = 0;
  size_t peak_queued_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t rejected_queue_full_ = 0;
  uint64_t rejected_memory_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t completed_ = 0;
  uint64_t slow_queries_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> sessions_;
};

/// The in-process client-facing alias (the TCP front door wraps one).
using ServiceHandle = QueryService;

}  // namespace service
}  // namespace hwf

#endif  // HWF_SERVICE_SERVICE_H_
