#ifndef HWF_SERVICE_SERVICE_H_
#define HWF_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"
#include "mem/memory_budget.h"
#include "mst/tree_cache.h"
#include "obs/profile.h"
#include "parallel/thread_pool.h"
#include "service/catalog.h"
#include "service/sql_parser.h"
#include "storage/table.h"
#include "window/executor.h"

namespace hwf {
namespace service {

struct ServiceOptions {
  /// Session worker threads: the number of queries executing concurrently.
  /// Each executing query additionally fans out over the shared pool.
  size_t num_sessions = 2;

  /// Admitted-but-not-yet-executing queries the service will hold. A full
  /// queue rejects new submissions with ResourceExhausted (admission
  /// control) instead of building an unbounded backlog.
  size_t max_queued = 16;

  /// Service-wide admission budget (0 = unlimited). Every admitted query
  /// reserves `per_query_reservation_bytes` from it for its lifetime;
  /// when the budget cannot cover another reservation, the submission is
  /// rejected with ResourceExhausted.
  size_t memory_limit_bytes = 0;
  size_t per_query_reservation_bytes = 64ull << 20;

  /// Per-query execution budget handed to the executor (0 = unlimited;
  /// non-zero forces the spill paths and disables the tree cache for the
  /// query, see WindowExecutorOptions).
  size_t query_memory_limit_bytes = 0;

  /// Cross-query build-artifact cache capacity (0 disables reuse; the
  /// code path is identical, every lookup just misses).
  size_t cache_capacity_bytes = 256ull << 20;
  bool enable_cache = true;

  /// Default per-query deadline in seconds (0 = none). Queries past the
  /// deadline unwind cooperatively with DeadlineExceeded.
  double default_timeout_seconds = 0;

  /// Execution pool shared by all sessions; nullptr = ThreadPool::Default().
  ThreadPool* pool = nullptr;

  /// Engine/tree tuning forwarded to the executor. `memory_limit_bytes`,
  /// `tree_cache`, `cache_key` and `profile` are overridden per query.
  WindowExecutorOptions executor;
};

struct QueryOptions {
  /// Seconds until the query's deadline; <0 = service default, 0 = none.
  double timeout_seconds = -1;
  /// Allows a client to opt out of cached build artifacts.
  bool use_cache = true;
};

struct QueryResult {
  /// One column per select item, aligned with the source table's rows.
  Table table;
  /// The execution's cost breakdown (phase timings summed over the
  /// query's spec groups). Shared-ptr because ExecutionProfile is pinned.
  std::shared_ptr<obs::ExecutionProfile> profile;
};

/// The in-process query service: SQL front-end, admission control,
/// cooperative cancellation and cross-query merge-sort-tree reuse.
///
/// Lifecycle of a query:
///   Submit(sql)  — admission: bounded queue + memory reservation; returns
///                  a query id or ResourceExhausted immediately.
///   [session]    — a worker parses, plans and executes the query on the
///                  shared thread pool, under the query's StopToken.
///   Cancel(id)   — requests cooperative stop; the query unwinds at the
///                  next morsel/phase boundary with Cancelled and its
///                  admission reservation is released.
///   Wait(id)     — blocks for the result (or the error) and forgets the
///                  query. Each id can be waited on exactly once.
///
/// Query(sql) is the synchronous convenience wrapper. All methods are
/// thread-safe; the destructor cancels queued work and joins the sessions.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers (or replaces) a table; returns its version epoch. Running
  /// queries keep executing against the snapshot they started with.
  uint64_t RegisterTable(const std::string& name, Table table);

  StatusOr<uint64_t> Submit(std::string sql, QueryOptions options = {});
  Status Cancel(uint64_t query_id);
  StatusOr<QueryResult> Wait(uint64_t query_id);
  StatusOr<QueryResult> Query(std::string sql, QueryOptions options = {});

  struct Stats {
    size_t queued = 0;
    size_t executing = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t cancelled = 0;
    uint64_t completed = 0;
    size_t reserved_bytes = 0;  // live admission reservations
    mst::TreeCache::Stats cache;
  };
  Stats stats() const;

  mst::TreeCache& cache() { return cache_; }
  const ServiceOptions& options() const { return options_; }

  /// Stops accepting work, cancels queued queries and joins the session
  /// threads. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct QueryState;

  void SessionLoop();
  Status ExecuteQuery(QueryState& state);
  void FinishQuery(QueryState& state, Status status, QueryResult result);

  ServiceOptions options_;
  Catalog catalog_;
  mst::TreeCache cache_;
  mem::MemoryBudget admission_budget_;
  ThreadPool& pool_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<QueryState>> queue_;
  std::unordered_map<uint64_t, std::shared_ptr<QueryState>> queries_;
  uint64_t next_id_ = 1;
  size_t executing_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t completed_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> sessions_;
};

/// The in-process client-facing alias (the TCP front door wraps one).
using ServiceHandle = QueryService;

}  // namespace service
}  // namespace hwf

#endif  // HWF_SERVICE_SERVICE_H_
