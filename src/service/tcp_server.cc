#include "service/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "dist/sharding.h"
#include "dist/wire_protocol.h"
#include "obs/metrics.h"
#include "service/result_format.h"
#include "service/service.h"
#include "storage/csv.h"

namespace hwf {
namespace service {

bool ReadLineFd(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return !line->empty();
    if (c == '\n') return true;
    if (c != '\r') line->push_back(c);
  }
}

bool ReadExactFd(int fd, size_t size, std::string* out) {
  out->resize(size);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out->data() + got, size - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

bool WriteAllFd(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SendPayloadFd(int fd, const std::string& payload,
                   const std::string& header_extra) {
  std::string header = "OK " + std::to_string(payload.size());
  if (!header_extra.empty()) header += " " + header_extra;
  return WriteAllFd(fd, header + "\n" + payload);
}

bool SendOkFd(int fd) { return WriteAllFd(fd, "OK\n"); }

bool SendErrorFd(int fd, const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return WriteAllFd(fd, "ERR " +
                            std::to_string(ExitCodeForStatus(status)) + " " +
                            message + "\n");
}

namespace {

/// Extracts the value of a "name=value" option from a command tail
/// (terminated by a space or end of string); empty when absent.
std::string ExtractOption(const std::string& text, const char* name) {
  const std::string prefix = std::string(name) + "=";
  size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    if (pos > 0 && text[pos - 1] != ' ') {
      pos += prefix.size();
      continue;
    }
    std::string value = text.substr(pos + prefix.size());
    const size_t end = value.find(' ');
    if (end != std::string::npos) value.resize(end);
    return value;
  }
  return std::string();
}

/// Applies an ingest command's "types=" annotation: CSV carries no type
/// information, so a batch whose double column holds only integral values
/// would otherwise re-infer as int64 and clash with the stored table.
StatusOr<Table> CoerceParsedRows(Table rows, const std::string& type_list) {
  if (type_list.empty()) return rows;
  StatusOr<std::vector<DataType>> types = dist::ParseTypeList(type_list);
  if (!types.ok()) return types.status();
  return dist::CoerceToTypes(*types, rows);
}

}  // namespace

bool HandleHello(int fd, const std::string& rest) {
  if (!rest.empty()) {
    const int client_version = std::atoi(rest.c_str());
    if (client_version != dist::kWireProtocolVersion) {
      SendErrorFd(fd, Status::InvalidArgument(
                          "protocol version mismatch: server speaks " +
                          std::to_string(dist::kWireProtocolVersion) +
                          ", client speaks " + rest));
      return true;
    }
  }
  SendPayloadFd(fd,
                "HWF " + std::to_string(dist::kWireProtocolVersion) + "\n");
  return true;
}

void ServeServiceConnection(int fd, QueryService* svc,
                            obs::MetricsRegistry* registry) {
  ResultFormat format = ResultFormat::kCsv;
  double timeout_seconds = -1;  // service default
  std::string line;
  while (ReadLineFd(fd, &line)) {
    const size_t space = line.find(' ');
    std::string command = line.substr(0, space);
    for (char& c : command) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    const std::string rest =
        space == std::string::npos ? std::string() : line.substr(space + 1);

    if (command == "QUIT") {
      SendOkFd(fd);
      break;
    }
    if (command == "PING") {
      SendPayloadFd(fd, "PONG\n");
      continue;
    }
    if (command == "HELLO") {
      HandleHello(fd, rest);
      continue;
    }
    if (command == "STATS") {
      SendPayloadFd(fd, svc->StatsJson());
      continue;
    }
    if (command == "METRICS") {
      SendPayloadFd(fd, registry->RenderText());
      continue;
    }
    if (command == "PROFILE") {
      char* end = nullptr;
      const uint64_t id = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) {
        SendErrorFd(fd, Status::InvalidArgument("PROFILE needs a query id"));
        continue;
      }
      StatusOr<std::string> profile = svc->RetainedProfileJson(id);
      if (!profile.ok()) {
        SendErrorFd(fd, profile.status());
      } else {
        SendPayloadFd(fd, *profile + "\n");
      }
      continue;
    }
    if (command == "FORMAT") {
      StatusOr<ResultFormat> parsed = ParseResultFormat(rest);
      if (!parsed.ok()) {
        SendErrorFd(fd, parsed.status());
        continue;
      }
      format = *parsed;
      SendOkFd(fd);
      continue;
    }
    if (command == "TIMEOUT") {
      timeout_seconds = std::atof(rest.c_str());
      SendOkFd(fd);
      continue;
    }
    if (command == "QUERY" || command == "SUBMIT") {
      if (rest.empty()) {
        SendErrorFd(fd, Status::InvalidArgument(command + " needs SQL text"));
        continue;
      }
      QueryOptions options;
      options.timeout_seconds = timeout_seconds;
      if (command == "SUBMIT") {
        StatusOr<uint64_t> id = svc->Submit(rest, options);
        if (!id.ok()) {
          SendErrorFd(fd, id.status());
        } else {
          SendPayloadFd(fd, "ID " + std::to_string(*id) + "\n");
        }
        continue;
      }
      StatusOr<QueryResult> result = svc->Query(rest, options);
      if (!result.ok()) {
        SendErrorFd(fd, result.status());
      } else {
        SendPayloadFd(fd, FormatTable(result->table, format),
                      "id=" + std::to_string(result->query_id));
      }
      continue;
    }
    if (command == "REGISTER") {
      // "<table> <nbytes> [key=<col>]": the CSV payload (with header)
      // follows the line and registers/replaces the named table. This is
      // how a coordinator distributes shards to empty workers.
      const size_t sep = rest.find(' ');
      if (sep == std::string::npos) {
        SendErrorFd(fd, Status::InvalidArgument(
                            "REGISTER wants: <table> <nbytes> [key=<col>]"));
        continue;
      }
      const std::string table_name = rest.substr(0, sep);
      char* end = nullptr;
      const std::string tail = rest.substr(sep + 1);
      const uint64_t nbytes = std::strtoull(tail.c_str(), &end, 10);
      if (end == tail.c_str()) {
        SendErrorFd(fd,
                    Status::InvalidArgument("REGISTER needs a byte count"));
        continue;
      }
      const std::string extra = end;
      const std::string key_column = ExtractOption(extra, "key");
      std::string payload;
      if (!ReadExactFd(fd, static_cast<size_t>(nbytes), &payload)) break;
      StatusOr<Table> parsed = ParseCsv(payload);
      if (!parsed.ok()) {
        SendErrorFd(fd, parsed.status());
        continue;
      }
      StatusOr<Table> table =
          CoerceParsedRows(std::move(*parsed), ExtractOption(extra, "types"));
      if (!table.ok()) {
        SendErrorFd(fd, table.status());
        continue;
      }
      const size_t rows = table->num_rows();
      uint64_t epoch = 0;
      if (key_column.empty()) {
        epoch = svc->RegisterTable(table_name, std::move(*table));
      } else {
        StatusOr<uint64_t> registered =
            svc->RegisterTable(table_name, std::move(*table), key_column);
        if (!registered.ok()) {
          SendErrorFd(fd, registered.status());
          continue;
        }
        epoch = *registered;
      }
      SendPayloadFd(fd, "REGISTERED " + std::to_string(rows) +
                            " epoch=" + std::to_string(epoch) + "\n");
      continue;
    }
    if (command == "APPEND" || command == "UPSERT") {
      // "<table> <nbytes>": the CSV payload (with header) follows the line.
      const size_t sep = rest.find(' ');
      if (sep == std::string::npos) {
        SendErrorFd(fd, Status::InvalidArgument(command +
                                                " wants: <table> <nbytes>"));
        continue;
      }
      const std::string table_name = rest.substr(0, sep);
      char* end = nullptr;
      const std::string count_text = rest.substr(sep + 1);
      const uint64_t nbytes = std::strtoull(count_text.c_str(), &end, 10);
      if (end == count_text.c_str()) {
        SendErrorFd(fd, Status::InvalidArgument(command + " needs a byte "
                                                "count"));
        continue;
      }
      std::string payload;
      if (!ReadExactFd(fd, static_cast<size_t>(nbytes), &payload)) break;
      StatusOr<Table> parsed = ParseCsv(payload);
      if (!parsed.ok()) {
        SendErrorFd(fd, parsed.status());
        continue;
      }
      StatusOr<Table> rows = CoerceParsedRows(
          std::move(*parsed), ExtractOption(end, "types"));
      if (!rows.ok()) {
        SendErrorFd(fd, rows.status());
        continue;
      }
      StatusOr<Catalog::TableMeta> meta =
          command == "APPEND" ? svc->AppendRows(table_name, *rows)
                              : svc->UpsertRows(table_name, *rows);
      if (!meta.ok()) {
        SendErrorFd(fd, meta.status());
        continue;
      }
      SendPayloadFd(fd, "ROWS " + std::to_string(rows->num_rows()) +
                            " minor=" + std::to_string(meta->minor) +
                            " delta=" + std::to_string(meta->delta_rows) +
                            "\n");
      continue;
    }
    if (command == "COMPACT") {
      if (rest.empty()) {
        SendErrorFd(fd, Status::InvalidArgument("COMPACT needs a table name"));
        continue;
      }
      StatusOr<Catalog::TableMeta> meta = svc->CompactTable(rest);
      if (!meta.ok()) {
        SendErrorFd(fd, meta.status());
        continue;
      }
      SendPayloadFd(fd, "COMPACTED base=" + std::to_string(meta->base_rows) +
                            " minor=" + std::to_string(meta->minor) + "\n");
      continue;
    }
    if (command == "WAIT" || command == "CANCEL") {
      char* end = nullptr;
      const uint64_t id = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) {
        SendErrorFd(fd, Status::InvalidArgument(command + " needs a query "
                                                "id"));
        continue;
      }
      if (command == "CANCEL") {
        Status status = svc->Cancel(id);
        if (status.ok()) {
          SendOkFd(fd);
        } else {
          SendErrorFd(fd, status);
        }
        continue;
      }
      StatusOr<QueryResult> result = svc->Wait(id);
      if (!result.ok()) {
        SendErrorFd(fd, result.status());
      } else {
        SendPayloadFd(fd, FormatTable(result->table, format),
                      "id=" + std::to_string(result->query_id));
      }
      continue;
    }
    SendErrorFd(fd, Status::InvalidArgument("unknown command '" + command +
                                            "'"));
  }
}

TcpServer::TcpServer(Handler handler, bool detach_connections)
    : handler_(std::move(handler)),
      detach_connections_(detach_connections) {}

TcpServer::~TcpServer() { Stop(); }

StatusOr<int> TcpServer::Listen(int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(listener);
    return Status::Internal("bind: " + error);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(listener, 64) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listener);
    return Status::Internal("listen: " + error);
  }
  listener_ = listener;
  port_ = ntohs(addr.sin_port);
  return port_;
}

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) break;
        continue;
      }
      break;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    if (detach_connections_) {
      std::thread([this, fd] { HandleConnection(fd); }).detach();
    } else {
      live_fds_.push_back(fd);
      connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
    }
  }
}

void TcpServer::Start() {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void TcpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && listener_ < 0) return;
    stopping_ = true;
  }
  if (listener_ >= 0) {
    ::shutdown(listener_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listener_ >= 0) {
    ::close(listener_);
    listener_ = -1;
  }
  if (!detach_connections_) {
    // Abort live connections so blocked readers/writers unwind; the
    // threads close their fds after deregistering (under the mutex), so a
    // shutdown here can never hit a recycled descriptor.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      threads.swap(connection_threads_);
    }
    for (std::thread& thread : threads) {
      if (thread.joinable()) thread.join();
    }
  }
}

void TcpServer::HandleConnection(int fd) {
  handler_(fd);
  if (!detach_connections_) {
    std::lock_guard<std::mutex> lock(mutex_);
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                    live_fds_.end());
  }
  ::close(fd);
}

}  // namespace service
}  // namespace hwf
