#include "service/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <utility>

#include "window/shared_sort.h"

namespace hwf {
namespace service {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokenKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier spelling / number literal / symbol
  std::string upper;  // upper-cased identifier, for keyword matching
  size_t pos = 0;     // byte offset in the statement, for error messages
};

Status TokenError(const Token& token, const std::string& message) {
  return Status::InvalidArgument(
      "parse error at position " + std::to_string(token.pos) + " ('" +
      (token.kind == TokenKind::kEnd ? "<end>" : token.text) +
      "'): " + message);
}

StatusOr<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.pos = i;
    if (is_ident_start(c)) {
      size_t j = i;
      while (j < n && is_ident(sql[j])) ++j;
      token.kind = TokenKind::kIdent;
      token.text = std::string(sql.substr(i, j - i));
      token.upper = token.text;
      for (char& ch : token.upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       (sql[j] == '.' && !seen_dot))) {
        seen_dot = seen_dot || sql[j] == '.';
        ++j;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(sql.substr(i, j - i));
      i = j;
    } else if (c == '(' || c == ')' || c == ',' || c == '*' || c == ';') {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      return TokenError(token, "unexpected character");
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.pos = n;
  tokens.push_back(end);
  return tokens;
}

// ---------------------------------------------------------------------------
// Recursive-descent parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedStatement> Parse() {
    ParsedStatement statement;
    if (Status s = ExpectKeyword("SELECT"); !s.ok()) return s;
    for (;;) {
      StatusOr<RawCall> call = ParseCall();
      if (!call.ok()) return call.status();
      statement.items.push_back(std::move(*call));
      if (!AcceptSymbol(",")) break;
    }
    if (Status s = ExpectKeyword("FROM"); !s.ok()) return s;
    StatusOr<std::string> table = ExpectIdent("table name");
    if (!table.ok()) return table.status();
    statement.table_name = std::move(*table);
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return TokenError(Peek(), "trailing input after statement");
    }
    return statement;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = index_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[index_++]; }

  bool PeekKeyword(const char* keyword, size_t ahead = 0) const {
    const Token& token = Peek(ahead);
    return token.kind == TokenKind::kIdent && token.upper == keyword;
  }
  bool AcceptKeyword(const char* keyword) {
    if (!PeekKeyword(keyword)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* keyword) {
    if (!AcceptKeyword(keyword)) {
      return TokenError(Peek(), std::string("expected ") + keyword);
    }
    return Status::OK();
  }
  bool AcceptSymbol(const char* symbol) {
    const Token& token = Peek();
    if (token.kind != TokenKind::kSymbol || token.text != symbol) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const char* symbol) {
    if (!AcceptSymbol(symbol)) {
      return TokenError(Peek(), std::string("expected '") + symbol + "'");
    }
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdent(const char* what) {
    const Token& token = Peek();
    if (token.kind != TokenKind::kIdent) {
      return TokenError(token, std::string("expected ") + what);
    }
    Advance();
    return token.text;
  }

  StatusOr<RawArg> ParseNumber() {
    const Token& token = Advance();
    RawArg arg;
    arg.is_number = true;
    arg.number = std::strtod(token.text.c_str(), nullptr);
    if (token.text.find('.') == std::string::npos) {
      arg.is_integer = true;
      arg.integer = std::strtoll(token.text.c_str(), nullptr, 10);
    }
    return arg;
  }

  /// keys := col [ASC|DESC] [NULLS FIRST|LAST] (',' ...)*
  Status ParseSortKeys(std::vector<RawSortKey>* keys) {
    for (;;) {
      RawSortKey key;
      StatusOr<std::string> column = ExpectIdent("ORDER BY column");
      if (!column.ok()) return column.status();
      key.column = std::move(*column);
      if (AcceptKeyword("DESC")) {
        key.ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
      // PostgreSQL default: NULLS LAST for ASC, NULLS FIRST for DESC.
      key.nulls_first = !key.ascending;
      if (AcceptKeyword("NULLS")) {
        if (AcceptKeyword("FIRST")) {
          key.nulls_first = true;
        } else if (AcceptKeyword("LAST")) {
          key.nulls_first = false;
        } else {
          return TokenError(Peek(), "expected FIRST or LAST after NULLS");
        }
      }
      keys->push_back(std::move(key));
      if (!AcceptSymbol(",")) return Status::OK();
    }
  }

  StatusOr<RawFrameBound> ParseFrameBound() {
    RawFrameBound bound;
    if (AcceptKeyword("UNBOUNDED")) {
      if (AcceptKeyword("PRECEDING")) {
        bound.kind = FrameBoundKind::kUnboundedPreceding;
      } else if (AcceptKeyword("FOLLOWING")) {
        bound.kind = FrameBoundKind::kUnboundedFollowing;
      } else {
        return TokenError(Peek(),
                          "expected PRECEDING or FOLLOWING after UNBOUNDED");
      }
      return bound;
    }
    if (AcceptKeyword("CURRENT")) {
      if (Status s = ExpectKeyword("ROW"); !s.ok()) return s;
      bound.kind = FrameBoundKind::kCurrentRow;
      return bound;
    }
    if (Peek().kind == TokenKind::kNumber) {
      StatusOr<RawArg> offset = ParseNumber();
      if (!offset.ok()) return offset.status();
      if (!offset->is_integer) {
        return TokenError(Peek(), "frame offsets must be integers");
      }
      bound.offset = offset->integer;
    } else if (Peek().kind == TokenKind::kIdent &&
               !PeekKeyword("PRECEDING") && !PeekKeyword("FOLLOWING")) {
      StatusOr<std::string> column = ExpectIdent("frame offset column");
      if (!column.ok()) return column.status();
      bound.offset_column = std::move(*column);
    } else {
      return TokenError(Peek(), "expected a frame bound");
    }
    if (AcceptKeyword("PRECEDING")) {
      bound.kind = FrameBoundKind::kPreceding;
    } else if (AcceptKeyword("FOLLOWING")) {
      bound.kind = FrameBoundKind::kFollowing;
    } else {
      return TokenError(Peek(), "expected PRECEDING or FOLLOWING");
    }
    return bound;
  }

  Status ParseWindow(RawWindow* window) {
    if (AcceptKeyword("PARTITION")) {
      if (Status s = ExpectKeyword("BY"); !s.ok()) return s;
      for (;;) {
        StatusOr<std::string> column = ExpectIdent("PARTITION BY column");
        if (!column.ok()) return column.status();
        window->partition_by.push_back(std::move(*column));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      if (Status s = ExpectKeyword("BY"); !s.ok()) return s;
      if (Status s = ParseSortKeys(&window->order_by); !s.ok()) return s;
    }
    if (AcceptKeyword("ROWS")) {
      window->mode = FrameMode::kRows;
    } else if (AcceptKeyword("RANGE")) {
      window->mode = FrameMode::kRange;
    } else if (AcceptKeyword("GROUPS")) {
      window->mode = FrameMode::kGroups;
    } else {
      return Status::OK();  // no frame clause: SQL default (bound later)
    }
    window->has_frame = true;
    if (AcceptKeyword("BETWEEN")) {
      StatusOr<RawFrameBound> begin = ParseFrameBound();
      if (!begin.ok()) return begin.status();
      window->begin = std::move(*begin);
      if (Status s = ExpectKeyword("AND"); !s.ok()) return s;
      StatusOr<RawFrameBound> end = ParseFrameBound();
      if (!end.ok()) return end.status();
      window->end = std::move(*end);
    } else {
      // Single-bound shorthand: <bound> means BETWEEN <bound> AND CURRENT
      // ROW (SQL:2011 6.10).
      StatusOr<RawFrameBound> begin = ParseFrameBound();
      if (!begin.ok()) return begin.status();
      window->begin = std::move(*begin);
      window->end.kind = FrameBoundKind::kCurrentRow;
    }
    if (AcceptKeyword("EXCLUDE")) {
      if (AcceptKeyword("NO")) {
        if (Status s = ExpectKeyword("OTHERS"); !s.ok()) return s;
        window->exclusion = FrameExclusion::kNoOthers;
      } else if (AcceptKeyword("CURRENT")) {
        if (Status s = ExpectKeyword("ROW"); !s.ok()) return s;
        window->exclusion = FrameExclusion::kCurrentRow;
      } else if (AcceptKeyword("GROUP")) {
        window->exclusion = FrameExclusion::kGroup;
      } else if (AcceptKeyword("TIES")) {
        window->exclusion = FrameExclusion::kTies;
      } else {
        return TokenError(Peek(),
                          "expected NO OTHERS, CURRENT ROW, GROUP or TIES");
      }
    }
    return Status::OK();
  }

  StatusOr<RawCall> ParseCall() {
    RawCall call;
    StatusOr<std::string> name = ExpectIdent("function name");
    if (!name.ok()) return name.status();
    call.function = std::move(*name);
    for (char& c : call.function) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (Status s = ExpectSymbol("("); !s.ok()) return s;
    if (AcceptSymbol("*")) {
      call.star = true;
    } else if (!AcceptSymbol(")")) {
      call.distinct = AcceptKeyword("DISTINCT");
      // Arguments, unless the parens hold only an inline ORDER BY
      // (e.g. rank(ORDER BY price DESC), the paper's Fig. 9 syntax).
      if (!PeekKeyword("ORDER")) {
        for (;;) {
          if (Peek().kind == TokenKind::kNumber) {
            StatusOr<RawArg> arg = ParseNumber();
            if (!arg.ok()) return arg.status();
            call.args.push_back(std::move(*arg));
          } else {
            StatusOr<std::string> column = ExpectIdent("function argument");
            if (!column.ok()) return column.status();
            RawArg arg;
            arg.column = std::move(*column);
            call.args.push_back(std::move(arg));
          }
          if (!AcceptSymbol(",")) break;
        }
      }
      if (AcceptKeyword("ORDER")) {
        if (Status s = ExpectKeyword("BY"); !s.ok()) return s;
        if (Status s = ParseSortKeys(&call.order_by); !s.ok()) return s;
      }
      if (Status s = ExpectSymbol(")"); !s.ok()) return s;
    }
    if (call.star) {
      if (Status s = ExpectSymbol(")"); !s.ok()) return s;
    }
    if (AcceptKeyword("WITHIN")) {
      if (Status s = ExpectKeyword("GROUP"); !s.ok()) return s;
      if (Status s = ExpectSymbol("("); !s.ok()) return s;
      if (Status s = ExpectKeyword("ORDER"); !s.ok()) return s;
      if (Status s = ExpectKeyword("BY"); !s.ok()) return s;
      if (!call.order_by.empty()) {
        return TokenError(Peek(),
                          "both inline ORDER BY and WITHIN GROUP given");
      }
      if (Status s = ParseSortKeys(&call.order_by); !s.ok()) return s;
      if (Status s = ExpectSymbol(")"); !s.ok()) return s;
    }
    if (AcceptKeyword("FILTER")) {
      if (Status s = ExpectSymbol("("); !s.ok()) return s;
      if (Status s = ExpectKeyword("WHERE"); !s.ok()) return s;
      StatusOr<std::string> column = ExpectIdent("FILTER column");
      if (!column.ok()) return column.status();
      call.filter_column = std::move(*column);
      if (Status s = ExpectSymbol(")"); !s.ok()) return s;
    }
    if (AcceptKeyword("IGNORE")) {
      if (Status s = ExpectKeyword("NULLS"); !s.ok()) return s;
      call.ignore_nulls = true;
    } else if (AcceptKeyword("RESPECT")) {
      if (Status s = ExpectKeyword("NULLS"); !s.ok()) return s;
    }
    if (Status s = ExpectKeyword("OVER"); !s.ok()) return s;
    if (Status s = ExpectSymbol("("); !s.ok()) return s;
    if (Status s = ParseWindow(&call.window); !s.ok()) return s;
    if (Status s = ExpectSymbol(")"); !s.ok()) return s;
    if (AcceptKeyword("AS")) {
      StatusOr<std::string> alias = ExpectIdent("alias");
      if (!alias.ok()) return alias.status();
      call.alias = std::move(*alias);
    }
    return call;
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

struct FunctionSignature {
  WindowFunctionKind kind = WindowFunctionKind::kCountStar;
  WindowFunctionKind distinct_kind = WindowFunctionKind::kCountStar;
  bool has_distinct = false;
  int column_args = 0;     // leading column arguments
  int number_args = 0;     // then numeric arguments (max, optional)
  bool number_required = false;
  bool number_is_fraction = false;  // fraction vs integer param
};

std::optional<FunctionSignature> LookupFunction(const std::string& name) {
  using K = WindowFunctionKind;
  if (name == "count") {
    return FunctionSignature{K::kCount, K::kCountDistinct, true, 1, 0};
  }
  if (name == "sum") {
    return FunctionSignature{K::kSum, K::kSumDistinct, true, 1, 0};
  }
  if (name == "avg") {
    return FunctionSignature{K::kAvg, K::kAvgDistinct, true, 1, 0};
  }
  if (name == "min") {
    return FunctionSignature{K::kMin, K::kMinDistinct, true, 1, 0};
  }
  if (name == "max") {
    return FunctionSignature{K::kMax, K::kMaxDistinct, true, 1, 0};
  }
  if (name == "rank") return FunctionSignature{K::kRank, K::kRank, false, 0, 0};
  if (name == "dense_rank") {
    return FunctionSignature{K::kDenseRank, K::kDenseRank, false, 0, 0};
  }
  if (name == "row_number") {
    return FunctionSignature{K::kRowNumber, K::kRowNumber, false, 0, 0};
  }
  if (name == "percent_rank") {
    return FunctionSignature{K::kPercentRank, K::kPercentRank, false, 0, 0};
  }
  if (name == "cume_dist") {
    return FunctionSignature{K::kCumeDist, K::kCumeDist, false, 0, 0};
  }
  if (name == "ntile") {
    return FunctionSignature{K::kNtile, K::kNtile, false, 0, 1, true, false};
  }
  if (name == "percentile_disc") {
    return FunctionSignature{K::kPercentileDisc, K::kPercentileDisc, false,
                             0,  1, true, true};
  }
  if (name == "percentile_cont") {
    return FunctionSignature{K::kPercentileCont, K::kPercentileCont, false,
                             0,  1, true, true};
  }
  if (name == "median") {
    return FunctionSignature{K::kMedian, K::kMedian, false, 1, 0};
  }
  if (name == "first_value") {
    return FunctionSignature{K::kFirstValue, K::kFirstValue, false, 1, 0};
  }
  if (name == "last_value") {
    return FunctionSignature{K::kLastValue, K::kLastValue, false, 1, 0};
  }
  if (name == "nth_value") {
    return FunctionSignature{K::kNthValue, K::kNthValue, false,
                             1,  1,        true,         false};
  }
  if (name == "lead") {
    return FunctionSignature{K::kLead, K::kLead, false, 1, 1, false, false};
  }
  if (name == "lag") {
    return FunctionSignature{K::kLag, K::kLag, false, 1, 1, false, false};
  }
  if (name == "mode") {
    return FunctionSignature{K::kMode, K::kMode, false, 1, 0};
  }
  return std::nullopt;
}

StatusOr<size_t> BindColumn(const Table& table, const std::string& name) {
  return table.ColumnIndex(name);
}

StatusOr<std::vector<SortKey>> BindSortKeys(
    const Table& table, const std::vector<RawSortKey>& raw) {
  std::vector<SortKey> keys;
  keys.reserve(raw.size());
  for (const RawSortKey& r : raw) {
    StatusOr<size_t> column = BindColumn(table, r.column);
    if (!column.ok()) return column.status();
    keys.push_back(SortKey{*column, r.ascending, r.nulls_first});
  }
  return keys;
}

StatusOr<FrameBound> BindFrameBound(const Table& table,
                                    const RawFrameBound& raw) {
  FrameBound bound;
  bound.kind = raw.kind;
  bound.offset = raw.offset;
  if (!raw.offset_column.empty()) {
    StatusOr<size_t> column = BindColumn(table, raw.offset_column);
    if (!column.ok()) return column.status();
    bound.offset_column = *column;
  }
  return bound;
}

StatusOr<WindowSpec> BindWindow(const Table& table, const RawWindow& raw) {
  WindowSpec spec;
  for (const std::string& name : raw.partition_by) {
    StatusOr<size_t> column = BindColumn(table, name);
    if (!column.ok()) return column.status();
    spec.partition_by.push_back(*column);
  }
  StatusOr<std::vector<SortKey>> order = BindSortKeys(table, raw.order_by);
  if (!order.ok()) return order.status();
  spec.order_by = std::move(*order);
  if (raw.has_frame) {
    spec.frame.mode = raw.mode;
    StatusOr<FrameBound> begin = BindFrameBound(table, raw.begin);
    if (!begin.ok()) return begin.status();
    spec.frame.begin = *begin;
    StatusOr<FrameBound> end = BindFrameBound(table, raw.end);
    if (!end.ok()) return end.status();
    spec.frame.end = *end;
    spec.frame.exclusion = raw.exclusion;
  } else if (spec.order_by.empty()) {
    // SQL default without ORDER BY: the whole partition.
    spec.frame.mode = FrameMode::kRows;
    spec.frame.begin = FrameBound::UnboundedPreceding();
    spec.frame.end = FrameBound::UnboundedFollowing();
  } else {
    // SQL default with ORDER BY: up to and including the current peer
    // group (RANGE UNBOUNDED PRECEDING, expressed in GROUPS mode).
    spec.frame.mode = FrameMode::kGroups;
    spec.frame.begin = FrameBound::UnboundedPreceding();
    spec.frame.end = FrameBound::CurrentRow();
  }
  return spec;
}

StatusOr<WindowFunctionCall> BindCall(const Table& table, const RawCall& raw) {
  WindowFunctionCall call;
  if (raw.star) {
    if (raw.function != "count") {
      return Status::InvalidArgument("only count(*) accepts '*', not " +
                                     raw.function);
    }
    call.kind = WindowFunctionKind::kCountStar;
  } else {
    std::optional<FunctionSignature> sig = LookupFunction(raw.function);
    if (!sig.has_value()) {
      return Status::InvalidArgument("unknown window function '" +
                                     raw.function + "'");
    }
    if (raw.distinct && !sig->has_distinct) {
      return Status::InvalidArgument("DISTINCT is not supported for " +
                                     raw.function);
    }
    call.kind = raw.distinct ? sig->distinct_kind : sig->kind;

    // Split the positional arguments: numeric literal first for the
    // fraction-style functions (percentile_disc(0.5 ...)), columns first
    // otherwise (lead(price, 2)).
    std::vector<const RawArg*> columns;
    std::vector<const RawArg*> numbers;
    for (const RawArg& arg : raw.args) {
      (arg.is_number ? numbers : columns).push_back(&arg);
    }
    if (static_cast<int>(columns.size()) > sig->column_args) {
      return Status::InvalidArgument(raw.function + " takes at most " +
                                     std::to_string(sig->column_args) +
                                     " column argument(s)");
    }
    if (static_cast<int>(numbers.size()) > sig->number_args) {
      return Status::InvalidArgument(raw.function + " takes at most " +
                                     std::to_string(sig->number_args) +
                                     " numeric argument(s)");
    }
    if (sig->number_required && numbers.empty()) {
      return Status::InvalidArgument(raw.function +
                                     " requires a numeric argument");
    }
    if (sig->column_args == 1 && columns.empty() &&
        raw.order_by.empty() &&
        (call.kind == WindowFunctionKind::kPercentileDisc ||
         call.kind == WindowFunctionKind::kPercentileCont)) {
      return Status::InvalidArgument(
          raw.function + " requires WITHIN GROUP (ORDER BY ...) or an "
                         "inline ORDER BY");
    }
    if (sig->column_args == 1 && columns.empty() && raw.order_by.empty() &&
        call.kind != WindowFunctionKind::kPercentileDisc &&
        call.kind != WindowFunctionKind::kPercentileCont) {
      return Status::InvalidArgument(raw.function +
                                     " requires a column argument");
    }
    if (!columns.empty()) {
      StatusOr<size_t> column = BindColumn(table, columns[0]->column);
      if (!column.ok()) return column.status();
      call.argument = *column;
    }
    if (!numbers.empty()) {
      if (sig->number_is_fraction) {
        call.fraction = numbers[0]->number;
      } else {
        if (!numbers[0]->is_integer) {
          return Status::InvalidArgument(raw.function +
                                         " takes an integer argument");
        }
        call.param = numbers[0]->integer;
      }
    }
  }

  StatusOr<std::vector<SortKey>> order = BindSortKeys(table, raw.order_by);
  if (!order.ok()) return order.status();
  call.order_by = std::move(*order);
  // Percentiles select the value of the ordering expression: WITHIN GROUP
  // (ORDER BY col) makes col the argument when none was given explicitly.
  if ((call.kind == WindowFunctionKind::kPercentileDisc ||
       call.kind == WindowFunctionKind::kPercentileCont) &&
      !call.argument.has_value()) {
    if (call.order_by.size() != 1) {
      return Status::InvalidArgument(
          raw.function + " requires exactly one ordering column");
    }
    call.argument = call.order_by[0].column;
  }
  if (!raw.filter_column.empty()) {
    StatusOr<size_t> column = BindColumn(table, raw.filter_column);
    if (!column.ok()) return column.status();
    call.filter = *column;
  }
  call.ignore_nulls = raw.ignore_nulls;
  return call;
}

}  // namespace

StatusOr<ParsedStatement> ParseStatement(std::string_view sql) {
  StatusOr<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

StatusOr<PlannedQuery> BindStatement(const ParsedStatement& statement,
                                     const Table& table) {
  PlannedQuery plan;
  plan.table_name = statement.table_name;
  std::unordered_map<WindowSpec, size_t, WindowSpecHash> group_index;
  for (size_t slot = 0; slot < statement.items.size(); ++slot) {
    const RawCall& raw = statement.items[slot];
    StatusOr<WindowSpec> spec = BindWindow(table, raw.window);
    if (!spec.ok()) return spec.status();
    StatusOr<WindowFunctionCall> call = BindCall(table, raw);
    if (!call.ok()) return call.status();
    if (Status s = ValidateWindowSpec(table, *spec); !s.ok()) return s;
    if (Status s = ValidateWindowCall(table, *spec, *call); !s.ok()) return s;
    plan.output_names.push_back(raw.alias.empty() ? raw.function : raw.alias);
    // Group by the spec's canonical structural equality (window/spec.h):
    // one definition of "same spec", shared with the executor.
    auto [it, inserted] = group_index.try_emplace(*spec, plan.groups.size());
    if (inserted) {
      plan.groups.emplace_back();
      plan.groups.back().spec = std::move(*spec);
    }
    PlannedGroup& group = plan.groups[it->second];
    group.calls.push_back(std::move(*call));
    group.output_slots.push_back(slot);
  }
  if (plan.groups.empty()) {
    return Status::InvalidArgument("statement has no window function calls");
  }
  // Emit the groups in shared-sort execution order (producers of each sort
  // chain first), so the executor's sharing plan and any consumer that walks
  // the groups in sequence see producer sorts before the specs they cover.
  std::vector<const WindowSpec*> specs;
  specs.reserve(plan.groups.size());
  for (const PlannedGroup& group : plan.groups) specs.push_back(&group.spec);
  const SharedSortPlan shared = PlanSharedSorts(specs);
  if (!std::is_sorted(shared.sequence.begin(), shared.sequence.end())) {
    std::vector<PlannedGroup> ordered;
    ordered.reserve(plan.groups.size());
    for (size_t index : shared.sequence) {
      ordered.push_back(std::move(plan.groups[index]));
    }
    plan.groups = std::move(ordered);
  }
  return plan;
}

StatusOr<PlannedQuery> PlanQuery(std::string_view sql, const Table& table) {
  StatusOr<ParsedStatement> statement = ParseStatement(sql);
  if (!statement.ok()) return statement.status();
  return BindStatement(*statement, table);
}

}  // namespace service
}  // namespace hwf
