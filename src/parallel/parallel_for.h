#ifndef HWF_PARALLEL_PARALLEL_FOR_H_
#define HWF_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "parallel/thread_pool.h"

namespace hwf {

/// Default task (morsel) size in tuples. The paper's Hyper configuration
/// cuts tasks of 20 000 tuples (§5.5); keeping the same constant reproduces
/// the task-granularity effects measured in the evaluation.
inline constexpr size_t kDefaultMorselSize = 20000;

/// Runs `body(lo, hi)` over morsels of `[begin, end)` on the given pool.
///
/// Work is claimed dynamically: each runner repeatedly grabs the next morsel
/// of `morsel_size` elements until the range is exhausted. The calling
/// thread participates, so this never deadlocks and is efficient even on a
/// pool without workers. `body` must be safe to invoke concurrently on
/// disjoint subranges.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 ThreadPool& pool = ThreadPool::Default(),
                 size_t morsel_size = kDefaultMorselSize);

/// Convenience overload iterating element-wise: calls `body(i)` for each i.
/// Prefer the range form when per-element dispatch overhead matters.
void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& body,
                     ThreadPool& pool = ThreadPool::Default(),
                     size_t morsel_size = kDefaultMorselSize);

}  // namespace hwf

#endif  // HWF_PARALLEL_PARALLEL_FOR_H_
