#ifndef HWF_PARALLEL_PARALLEL_FOR_H_
#define HWF_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "common/stop_token.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// Default task (morsel) size in tuples. The paper's Hyper configuration
/// cuts tasks of 20 000 tuples (§5.5); keeping the same constant reproduces
/// the task-granularity effects measured in the evaluation.
inline constexpr size_t kDefaultMorselSize = 20000;

/// Runs `body(lo, hi)` over morsels of `[begin, end)` on the given pool.
///
/// Work is claimed dynamically: each runner repeatedly grabs the next morsel
/// of `morsel_size` elements until the range is exhausted. The calling
/// thread participates, so this never deadlocks and is efficient even on a
/// pool without workers. `body` must be safe to invoke concurrently on
/// disjoint subranges.
///
/// Cancellation: the caller's ambient StopToken (CurrentStopToken()) is
/// captured on entry and re-installed on every runner, so nested parallel
/// regions inherit it. Once the token stops, runners cease claiming new
/// morsels — already-running morsels finish, so at most `parallelism`
/// morsels of work follow a stop request. The loop's output may then be
/// INCOMPLETE: callers that installed a token must check it afterwards
/// (CheckStop()) and discard partial results on a non-OK status.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 ThreadPool& pool = ThreadPool::Default(),
                 size_t morsel_size = kDefaultMorselSize);

/// ParallelFor with per-morsel Status results and deterministic error
/// selection: the returned error is always the one produced by the failing
/// morsel with the LOWEST start index, regardless of thread count or
/// scheduling — every morsel below that index is guaranteed to have run,
/// and morsels above it short-circuit (they are skipped once an error at a
/// lower index is known). This makes concurrent failures reproducible:
/// N morsels failing with distinct Statuses always report the same one.
///
/// A stopped ambient StopToken short-circuits the loop the same way and
/// yields Cancelled / DeadlineExceeded — unless a morsel error was already
/// recorded, which takes precedence.
Status ParallelForStatus(size_t begin, size_t end,
                         const std::function<Status(size_t, size_t)>& body,
                         ThreadPool& pool = ThreadPool::Default(),
                         size_t morsel_size = kDefaultMorselSize);

/// Convenience overload iterating element-wise: calls `body(i)` for each i.
/// Prefer the range form when per-element dispatch overhead matters.
void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& body,
                     ThreadPool& pool = ThreadPool::Default(),
                     size_t morsel_size = kDefaultMorselSize);

}  // namespace hwf

#endif  // HWF_PARALLEL_PARALLEL_FOR_H_
