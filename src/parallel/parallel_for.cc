#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>

#include "common/macros.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace hwf {

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 ThreadPool& pool, size_t morsel_size) {
  HWF_CHECK(begin <= end);
  HWF_CHECK(morsel_size > 0);
  const size_t total = end - begin;
  if (total == 0) return;
  const StopToken stop = CurrentStopToken();
  if (total <= morsel_size || pool.num_workers() == 0) {
    // Serial fast path: either a single morsel or no helper threads. Note
    // that even the serial path processes morsel-by-morsel so that
    // task-granularity effects (e.g., state rebuilds in incremental
    // baselines) are identical regardless of worker count.
    size_t morsels = 0;
    for (size_t lo = begin; lo < end; lo += morsel_size) {
      if (stop.stop_requested()) break;
      body(lo, std::min(end, lo + morsel_size));
      ++morsels;
    }
    obs::Add(obs::Counter::kParallelForMorsels, morsels);
    return;
  }

  auto next = std::make_shared<std::atomic<size_t>>(begin);
  auto runner = [next, end, morsel_size, &body, stop] {
    HWF_TRACE_SCOPE("parallel.runner");
    // Re-install the submitter's token so nested parallel regions and
    // cooperative checks inside `body` observe the same cancellation.
    ScopedStopToken scope(stop);
    // Batch the morsel counter per runner, not per claim: one relaxed add
    // per task instead of one per 20k-tuple morsel.
    size_t morsels = 0;
    for (;;) {
      if (stop.stop_requested()) break;
      size_t lo = next->fetch_add(morsel_size, std::memory_order_relaxed);
      if (lo >= end) break;
      body(lo, std::min(end, lo + morsel_size));
      ++morsels;
    }
    if (morsels > 0) obs::Add(obs::Counter::kParallelForMorsels, morsels);
  };

  const size_t num_morsels = (total + morsel_size - 1) / morsel_size;
  const int num_runners = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(pool.parallelism()), num_morsels));
  TaskGroup group(pool);
  for (int i = 0; i < num_runners - 1; ++i) {
    group.Run(runner);
  }
  runner();  // The caller is the final runner.
  group.Wait();
}

Status ParallelForStatus(size_t begin, size_t end,
                         const std::function<Status(size_t, size_t)>& body,
                         ThreadPool& pool, size_t morsel_size) {
  HWF_CHECK(begin <= end);
  HWF_CHECK(morsel_size > 0);
  constexpr size_t kNoError = std::numeric_limits<size_t>::max();
  const size_t total = end - begin;
  if (total == 0) return Status::OK();
  const StopToken stop = CurrentStopToken();

  if (total <= morsel_size || pool.num_workers() == 0) {
    // Serial path: in-order execution already yields the lowest-index
    // error first.
    size_t morsels = 0;
    Status status;
    for (size_t lo = begin; lo < end; lo += morsel_size) {
      if (stop.stop_requested()) {
        if (status.ok()) status = stop.status();
        break;
      }
      status = body(lo, std::min(end, lo + morsel_size));
      ++morsels;
      if (!status.ok()) break;
    }
    obs::Add(obs::Counter::kParallelForMorsels, morsels);
    return status;
  }

  // Shared error slot: the winning error is the one with the smallest
  // morsel start index. `error_watermark` mirrors `first_lo` lock-free so
  // runners can short-circuit without taking the mutex per claim.
  //
  // Determinism argument: the watermark only ever decreases. A morsel is
  // skipped only when its start index exceeds the watermark at claim time,
  // so every morsel below the FINAL watermark was executed — the reported
  // error is therefore always the globally smallest failing morsel's, no
  // matter how claims interleave.
  struct Shared {
    std::atomic<size_t> next;
    std::atomic<size_t> error_watermark{kNoError};
    std::mutex mutex;
    size_t first_lo = kNoError;
    Status first_status;
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin, std::memory_order_relaxed);

  auto runner = [shared, end, morsel_size, &body, stop] {
    HWF_TRACE_SCOPE("parallel.runner");
    ScopedStopToken scope(stop);
    size_t morsels = 0;
    for (;;) {
      if (stop.stop_requested()) break;
      size_t lo = shared->next.fetch_add(morsel_size,
                                         std::memory_order_relaxed);
      if (lo >= end) break;
      // Claims are monotonic: once this claim passes the watermark every
      // later claim will too, so stop claiming outright.
      if (lo > shared->error_watermark.load(std::memory_order_acquire)) break;
      Status status = body(lo, std::min(end, lo + morsel_size));
      ++morsels;
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (lo < shared->first_lo) {
          shared->first_lo = lo;
          shared->first_status = std::move(status);
          shared->error_watermark.store(lo, std::memory_order_release);
        }
      }
    }
    if (morsels > 0) obs::Add(obs::Counter::kParallelForMorsels, morsels);
  };

  const size_t num_morsels = (total + morsel_size - 1) / morsel_size;
  const int num_runners = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(pool.parallelism()), num_morsels));
  {
    TaskGroup group(pool);
    for (int i = 0; i < num_runners - 1; ++i) {
      group.Run(runner);
    }
    runner();  // The caller is the final runner.
    group.Wait();
  }
  if (shared->first_lo != kNoError) return shared->first_status;
  return stop.status();
}

void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& body,
                     ThreadPool& pool, size_t morsel_size) {
  ParallelFor(
      begin, end,
      [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      pool, morsel_size);
}

}  // namespace hwf
