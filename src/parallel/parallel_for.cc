#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/macros.h"
#include "obs/counters.h"

namespace hwf {

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 ThreadPool& pool, size_t morsel_size) {
  HWF_CHECK(begin <= end);
  HWF_CHECK(morsel_size > 0);
  const size_t total = end - begin;
  if (total == 0) return;
  if (total <= morsel_size || pool.num_workers() == 0) {
    // Serial fast path: either a single morsel or no helper threads. Note
    // that even the serial path processes morsel-by-morsel so that
    // task-granularity effects (e.g., state rebuilds in incremental
    // baselines) are identical regardless of worker count.
    size_t morsels = 0;
    for (size_t lo = begin; lo < end; lo += morsel_size) {
      body(lo, std::min(end, lo + morsel_size));
      ++morsels;
    }
    obs::Add(obs::Counter::kParallelForMorsels, morsels);
    return;
  }

  auto next = std::make_shared<std::atomic<size_t>>(begin);
  auto runner = [next, end, morsel_size, &body] {
    // Batch the morsel counter per runner, not per claim: one relaxed add
    // per task instead of one per 20k-tuple morsel.
    size_t morsels = 0;
    for (;;) {
      size_t lo = next->fetch_add(morsel_size, std::memory_order_relaxed);
      if (lo >= end) break;
      body(lo, std::min(end, lo + morsel_size));
      ++morsels;
    }
    if (morsels > 0) obs::Add(obs::Counter::kParallelForMorsels, morsels);
  };

  const size_t num_morsels = (total + morsel_size - 1) / morsel_size;
  const int num_runners = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(pool.parallelism()), num_morsels));
  TaskGroup group(pool);
  for (int i = 0; i < num_runners - 1; ++i) {
    group.Run(runner);
  }
  runner();  // The caller is the final runner.
  group.Wait();
}

void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& body,
                     ThreadPool& pool, size_t morsel_size) {
  ParallelFor(
      begin, end,
      [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      pool, morsel_size);
}

}  // namespace hwf
