#ifndef HWF_PARALLEL_INTROSORT_H_
#define HWF_PARALLEL_INTROSORT_H_

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <utility>

namespace hwf {

/// Quicksort partitioning scheme used by Introsort.
///
/// The paper (§5.3) reports that 2-way partitioning deteriorates to O(n²)
/// on duplicate-heavy inputs — which framed distinct counts produce, because
/// most prevIdcs entries are 0 — and switched Hyper to 3-way partitioning.
/// Both schemes are kept here so the ablation benchmark can demonstrate the
/// effect; all library call sites use kThreeWay.
enum class PartitionScheme {
  kTwoWay,
  kThreeWay,
};

namespace internal_sort {

constexpr ptrdiff_t kInsertionSortThreshold = 24;

template <typename Iter, typename Less>
void InsertionSort(Iter begin, Iter end, Less less) {
  for (Iter i = begin; i != end; ++i) {
    auto value = std::move(*i);
    Iter j = i;
    while (j != begin && less(value, *(j - 1))) {
      *j = std::move(*(j - 1));
      --j;
    }
    *j = std::move(value);
  }
}

template <typename Iter, typename Less>
Iter MedianOfThree(Iter a, Iter b, Iter c, Less less) {
  if (less(*a, *b)) {
    if (less(*b, *c)) return b;
    return less(*a, *c) ? c : a;
  }
  if (less(*a, *c)) return a;
  return less(*b, *c) ? c : b;
}

/// Lomuto-style 2-way partition with a median-of-three pivot. All elements
/// equal to the pivot land on one side, so runs of duplicates produce
/// maximally unbalanced splits — the quadratic degradation the paper
/// observed on framed distinct counts, where most prevIdcs entries are 0
/// (§5.3). Inside Introsort the depth budget converts the O(n²) into a
/// heapsort fallback, which is still several times slower than 3-way
/// partitioning on such inputs (see bench_ablation_quicksort).
template <typename Iter, typename Less>
Iter PartitionTwoWay(Iter begin, Iter end, Less less) {
  Iter mid = begin + (end - begin) / 2;
  Iter pivot_it = MedianOfThree(begin, mid, end - 1, less);
  std::iter_swap(pivot_it, end - 1);
  auto& pivot = *(end - 1);
  Iter store = begin;
  for (Iter it = begin; it != end - 1; ++it) {
    if (less(*it, pivot)) {
      std::iter_swap(it, store);
      ++store;
    }
  }
  std::iter_swap(store, end - 1);
  // The pivot's final position; the caller excludes it from both sides.
  return store;
}

/// Dutch-national-flag 3-way partition. Returns [lt, gt): the range holding
/// elements equal to the pivot, which needs no further sorting.
template <typename Iter, typename Less>
std::pair<Iter, Iter> PartitionThreeWay(Iter begin, Iter end, Less less) {
  Iter mid = begin + (end - begin) / 2;
  Iter pivot_it = MedianOfThree(begin, mid, end - 1, less);
  auto pivot = *pivot_it;
  Iter lt = begin;
  Iter i = begin;
  Iter gt = end;
  while (i < gt) {
    if (less(*i, pivot)) {
      std::iter_swap(lt, i);
      ++lt;
      ++i;
    } else if (less(pivot, *i)) {
      --gt;
      std::iter_swap(i, gt);
    } else {
      ++i;
    }
  }
  return {lt, gt};
}

template <typename Iter, typename Less>
void IntrosortImpl(Iter begin, Iter end, Less less, int depth_budget,
                   PartitionScheme scheme) {
  while (end - begin > kInsertionSortThreshold) {
    if (depth_budget == 0) {
      std::make_heap(begin, end, less);
      std::sort_heap(begin, end, less);
      return;
    }
    --depth_budget;
    if (scheme == PartitionScheme::kThreeWay) {
      auto [lt, gt] = PartitionThreeWay(begin, end, less);
      // Recurse into the smaller side, loop on the larger one to bound
      // stack depth.
      if (lt - begin < end - gt) {
        IntrosortImpl(begin, lt, less, depth_budget, scheme);
        begin = gt;
      } else {
        IntrosortImpl(gt, end, less, depth_budget, scheme);
        end = lt;
      }
    } else {
      Iter pivot = PartitionTwoWay(begin, end, less);
      // Exclude the pivot position itself: both sides strictly shrink.
      if (pivot - begin < end - (pivot + 1)) {
        IntrosortImpl(begin, pivot, less, depth_budget, scheme);
        begin = pivot + 1;
      } else {
        IntrosortImpl(pivot + 1, end, less, depth_budget, scheme);
        end = pivot;
      }
    }
  }
  InsertionSort(begin, end, less);
}

inline int Log2Floor(size_t n) {
  int result = 0;
  while (n > 1) {
    n >>= 1;
    ++result;
  }
  return result;
}

}  // namespace internal_sort

/// Sorts [begin, end) with introsort: quicksort with a median-of-three
/// pivot, falling back to heapsort past a depth budget of 2·log2(n) and to
/// insertion sort for small ranges. `less` must induce a strict weak order.
template <typename Iter, typename Less>
void Introsort(Iter begin, Iter end, Less less,
               PartitionScheme scheme = PartitionScheme::kThreeWay) {
  if (end - begin <= 1) return;
  int depth = 2 * internal_sort::Log2Floor(static_cast<size_t>(end - begin));
  internal_sort::IntrosortImpl(begin, end, less, depth, scheme);
}

}  // namespace hwf

#endif  // HWF_PARALLEL_INTROSORT_H_
