#include "parallel/thread_pool.h"

#include <chrono>
#include <cstdlib>

#include "common/macros.h"

namespace hwf {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 1 ? static_cast<int>(hw) - 1 : 0;
  }
  HWF_CHECK(num_threads >= 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = [] {
    int threads = 0;
    if (const char* env = std::getenv("HWF_THREADS")) {
      threads = std::atoi(env);
      if (threads < 0) threads = 0;
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOnePending() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)] {
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  // Help drain the pool while our tasks are outstanding. This keeps the
  // caller productive and avoids deadlock when the pool has no workers.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_ == 0) return;
    }
    if (!pool_.RunOnePending()) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (pending_ == 0) return;
      // A task may be running on a worker; wait briefly for completion or
      // for new helpable work to appear.
      cv_.wait_for(lock, std::chrono::milliseconds(1),
                   [this] { return pending_ == 0; });
    }
  }
}

}  // namespace hwf
