#include "parallel/thread_pool.h"

#include <cstdlib>

#include "common/macros.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace hwf {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 1 ? static_cast<int>(hw) - 1 : 0;
  } else if (num_threads < 0) {
    num_threads = 0;  // explicitly worker-less: ParallelFor runs inline
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = [] {
    int threads = 0;
    if (const char* env = std::getenv("HWF_THREADS")) {
      threads = std::atoi(env);
      if (threads < 0) threads = 0;
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  // Carry the submitter's ambient query id into the task so spans recorded
  // on whichever thread runs it attribute to the same query. Free for tasks
  // submitted outside any query (the common library-only case).
  if (const uint64_t query_id = obs::CurrentQueryId(); query_id != 0) {
    task = [query_id, inner = std::move(task)] {
      obs::ScopedQueryId scope(query_id);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  obs::Add(obs::Counter::kPoolTasksSubmitted);
  cv_.notify_one();
}

bool ThreadPool::RunOnePending() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  obs::Add(obs::Counter::kPoolTasksRunByCaller);
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    while (queue_.empty() && !shutdown_) {
      cv_.wait(lock);
      if (queue_.empty() && !shutdown_) {
        // Woken (group-completion broadcast or spurious) with nothing to do.
        obs::Add(obs::Counter::kPoolIdleWakeups);
      }
    }
    if (shutdown_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void TaskGroup::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(pool_.mutex_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)] {
    task();
    bool done;
    {
      std::lock_guard<std::mutex> lock(pool_.mutex_);
      done = --pending_ == 0;
    }
    // The waiter checks pending_ under pool_.mutex_, so notifying after the
    // unlock cannot lose a wakeup. Broadcast only on the group's last task:
    // the waiter shares the pool's condition variable, so notify_one could
    // hand the wakeup to an idle worker instead.
    if (done) pool_.cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  // Help drain the pool while our tasks are outstanding. This keeps the
  // caller productive and avoids deadlock when the pool has no workers.
  std::unique_lock<std::mutex> lock(pool_.mutex_);
  while (pending_ != 0) {
    if (!pool_.queue_.empty()) {
      std::function<void()> task = std::move(pool_.queue_.front());
      pool_.queue_.pop_front();
      lock.unlock();
      obs::Add(obs::Counter::kPoolTasksRunByCaller);
      task();
      lock.lock();
      continue;
    }
    // Our remaining tasks are running on workers. Sleep until the last one
    // completes (notify_all above) or helpable work arrives (Submit's
    // notify_one may land here instead of on a worker).
    pool_.cv_.wait(lock);
    if (pending_ != 0 && pool_.queue_.empty()) {
      obs::Add(obs::Counter::kPoolIdleWakeups);
    }
  }
}

}  // namespace hwf
