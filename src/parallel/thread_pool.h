#ifndef HWF_PARALLEL_THREAD_POOL_H_
#define HWF_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hwf {

/// A fixed-size worker pool executing submitted tasks FIFO.
///
/// The pool is the substrate for the task-based (morsel-driven) parallelism
/// used throughout the library: higher layers split work into fixed-size
/// tasks (default 20 000 tuples, following the paper's Hyper configuration)
/// and submit them here. The calling thread of ParallelFor also participates
/// in task execution, so a pool with zero workers degrades gracefully to
/// serial execution.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` uses
  /// std::thread::hardware_concurrency() - 1 (the caller thread acts as the
  /// remaining worker in ParallelFor). A negative count creates a
  /// worker-less pool: every ParallelFor over it runs inline on the
  /// calling thread, which is the deterministic serial baseline used by
  /// differential tests and the executor's per-partition tasks.
  explicit ThreadPool(int num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Process-wide default pool. Worker count can be overridden with the
  /// HWF_THREADS environment variable (useful for exercising multi-threaded
  /// code paths on machines with few cores).
  static ThreadPool& Default();

  /// Number of worker threads (excluding the caller thread).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Effective parallelism for sizing task counts: workers + caller.
  int parallelism() const { return num_workers() + 1; }

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Runs one pending task on the calling thread if any is queued.
  /// Returns false when the queue was empty.
  bool RunOnePending();

 private:
  friend class TaskGroup;  // Waits on cv_ with pending state under mutex_.

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

/// Tracks a set of tasks submitted to a ThreadPool and joins them.
///
/// Wait() lets the calling thread execute pending pool tasks while waiting,
/// which both avoids idle callers and makes nested usage deadlock-free.
/// When the queue is empty and tasks are still running on workers, Wait()
/// sleeps on the pool's condition variable and is woken by exactly two
/// events: the group's last task finishing, or new (helpable) work being
/// enqueued. There is no timed polling.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { Wait(); }

  /// Submits `task` to the pool and tracks its completion.
  void Run(std::function<void()> task);

  /// Blocks until every task submitted through Run has finished.
  void Wait();

 private:
  ThreadPool& pool_;
  int pending_ = 0;  // guarded by pool_.mutex_
};

}  // namespace hwf

#endif  // HWF_PARALLEL_THREAD_POOL_H_
