#ifndef HWF_PARALLEL_PARALLEL_SORT_H_
#define HWF_PARALLEL_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "mem/chunk_arena.h"
#include "mem/memory_budget.h"
#include "mst/loser_tree.h"
#include "obs/trace.h"
#include "parallel/introsort.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// Computes the co-rank split for merging two sorted ranges.
///
/// Returns (i, j) with i + j = k such that a sequential merge — taking from
/// `a` on ties — emits exactly merge(a[0..i), b[0..j)) as its first k
/// outputs. This is the "merge path" split used to parallelize merging:
/// every output chunk [k0, k1) can be produced independently from
/// a[i0..i1) and b[j0..j1).
template <typename T, typename Less>
std::pair<size_t, size_t> CoRank(size_t k, const T* a, size_t na, const T* b,
                                 size_t nb, Less less) {
  HWF_DCHECK(k <= na + nb);
  size_t lo = k > nb ? k - nb : 0;
  size_t hi = std::min(k, na);
  while (lo < hi) {
    size_t i = lo + (hi - lo) / 2;
    size_t j = k - i;
    if (i < na && j > 0 && !less(b[j - 1], a[i])) {
      // b[j-1] >= a[i]: a[i] must be among the first k outputs (ties take
      // from a); i is too small.
      lo = i + 1;
    } else if (i > 0 && j < nb && less(b[j], a[i - 1])) {
      // b[j] < a[i-1]: b[j] must precede a[i-1]; i is too big.
      hi = i;
    } else {
      return {i, j};
    }
  }
  return {lo, k - lo};
}

/// Sequentially merges sorted ranges a and b into out; ties take from a.
template <typename T, typename Less>
void MergeSequential(const T* a, size_t na, const T* b, size_t nb, T* out,
                     Less less) {
  size_t i = 0;
  size_t j = 0;
  size_t o = 0;
  while (i < na && j < nb) {
    if (less(b[j], a[i])) {
      out[o++] = b[j++];
    } else {
      out[o++] = a[i++];
    }
  }
  while (i < na) out[o++] = a[i++];
  while (j < nb) out[o++] = b[j++];
}

/// Merges two sorted ranges into `out` using pool parallelism.
///
/// The output is cut into chunks of `grain` elements; co-ranking locates the
/// input split for every chunk, and chunks merge independently. The result
/// is bit-identical to MergeSequential.
template <typename T, typename Less>
void MergeParallel(const T* a, size_t na, const T* b, size_t nb, T* out,
                   Less less, ThreadPool& pool,
                   size_t grain = kDefaultMorselSize) {
  const size_t total = na + nb;
  if (total <= grain || pool.num_workers() == 0) {
    MergeSequential(a, na, b, nb, out, less);
    return;
  }
  ParallelFor(
      0, total,
      [&](size_t k0, size_t k1) {
        auto [i0, j0] = CoRank(k0, a, na, b, nb, less);
        auto [i1, j1] = CoRank(k1, a, na, b, nb, less);
        MergeSequential(a + i0, i1 - i0, b + j0, j1 - j0, out + k0, less);
      },
      pool, grain);
}

/// Fanout of the multiway merge rounds in ParallelSort's phase 2. 32-way
/// loser-tree merging turns log₂(runs) pairwise passes over the data into
/// log₃₂(runs) passes (one or two in practice) at ⌈log₂ 32⌉ = 5 comparisons
/// per element — the same kernel and fanout the merge sort tree build uses.
inline constexpr size_t kSortMergeFanout = 32;

namespace internal_sort {

/// Conservative byte estimate of one merge task's loser-tree internals
/// (key/loser/live arrays), charged alongside the ChunkArena scratch so the
/// budget sees the whole per-task footprint.
template <typename T>
constexpr size_t LoserTreeScratchBytes() {
  return kSortMergeFanout *
         (sizeof(T) + 2 * sizeof(uint32_t) + sizeof(unsigned char) + 16);
}

#if defined(HWF_HAS_OVC)

/// Byte estimate of one coded merge task's loser-tree internals — the
/// uncoded arrays plus the per-source head code.
template <typename T>
constexpr size_t OvcLoserTreeScratchBytes() {
  return kSortMergeFanout *
         (sizeof(T) + sizeof(OvcCode) + 2 * sizeof(uint32_t) +
          sizeof(const OvcCode*) + sizeof(unsigned char) + 16);
}

/// Offset-value-coded twin of the phase-1/phase-2 body of
/// ParallelSortRange. Identical run/merge structure and bit-identical
/// output, but every element carries its in-run code (relative to its run
/// predecessor) through the merge rounds, so most tournament matches
/// resolve on one 128-bit compare. Codes ping-pong between two side
/// buffers alongside the data; each merge round consumes the previous
/// round's output codes directly (a merge emits exactly the in-run codes
/// of its output).
///
/// Only valid when `less` orders exactly like OvcTraits<T>'s word
/// sequence; callers opt in explicitly via use_ovc.
template <typename T, typename Less>
void OvcSortRange(T* data, size_t n, Less less, ThreadPool& pool,
                  size_t run_size, PartitionScheme scheme, T* scratch,
                  mem::MemoryBudget* budget) {
  HWF_TRACE_SCOPE_ARG("sort.ovc_sort", "n", n);
  mem::MemoryReservation code_bytes;
  code_bytes.ForceReserve(budget, 2 * n * sizeof(OvcCode));
  // Default-initialized on purpose: zeroing 2n codes is a full extra pass
  // over memory, and phase 1 / each merge round overwrite every slot
  // before it is read.
  std::unique_ptr<OvcCode[]> codes_a(new OvcCode[n]);
  std::unique_ptr<OvcCode[]> codes_b(new OvcCode[n]);

  {
    // Phase 1: sort fixed-size runs and code each element against its run
    // predecessor in the same pass over the cached run.
    HWF_TRACE_SCOPE("sort.run_phase");
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          Introsort(data + lo, data + hi, less, scheme);
          ComputeOvcRunCodes(data + lo, hi - lo, codes_a.get() + lo);
        },
        pool, run_size);
  }

  HWF_TRACE_SCOPE("sort.merge_phase");
  const size_t parallelism = static_cast<size_t>(pool.parallelism());
  T* src = data;
  T* dst = scratch;
  OvcCode* src_codes = codes_a.get();
  OvcCode* dst_codes = codes_b.get();
  for (size_t width = run_size; width < n; width *= kSortMergeFanout) {
    const size_t group_len = width * kSortMergeFanout;
    const size_t num_groups = (n + group_len - 1) / group_len;
    auto collect_group = [&](size_t g, const T** child_data,
                             size_t* child_lens,
                             const OvcCode** child_codes) {
      const size_t begin = g * group_len;
      const size_t end = std::min(n, begin + group_len);
      size_t num_children = 0;
      for (size_t c = 0; c < kSortMergeFanout; ++c) {
        const size_t cb = begin + c * width;
        if (cb >= end) break;
        child_data[num_children] = src + cb;
        child_codes[num_children] = src_codes + cb;
        child_lens[num_children] = std::min(end, cb + width) - cb;
        ++num_children;
      }
      return num_children;
    };
    if (num_groups >= parallelism) {
      ParallelFor(
          0, num_groups,
          [&](size_t g_lo, size_t g_hi) {
            mem::ChunkArena arena(budget, /*min_chunk_bytes=*/4096);
            mem::MemoryReservation tree_scratch;
            tree_scratch.ForceReserve(budget, OvcLoserTreeScratchBytes<T>());
            const T** child_data =
                arena.template AllocateArray<const T*>(kSortMergeFanout);
            const OvcCode** child_codes =
                arena.template AllocateArray<const OvcCode*>(kSortMergeFanout);
            size_t* child_lens =
                arena.template AllocateArray<size_t>(kSortMergeFanout);
            size_t* pos = arena.template AllocateArray<size_t>(kSortMergeFanout);
            OvcLoserTree<T> tree;
            for (size_t g = g_lo; g < g_hi; ++g) {
              const size_t begin = g * group_len;
              const size_t end = std::min(n, begin + group_len);
              const size_t m =
                  collect_group(g, child_data, child_lens, child_codes);
              std::fill(pos, pos + m, 0);
              OvcLoserTreeMerge(tree, child_data, child_lens, m, pos,
                                child_codes, dst + begin, dst_codes + begin,
                                end - begin);
            }
          },
          pool, /*morsel_size=*/1);
    } else {
      std::vector<const T*> child_data(kSortMergeFanout);
      std::vector<const OvcCode*> child_codes(kSortMergeFanout);
      std::vector<size_t> child_lens(kSortMergeFanout);
      for (size_t g = 0; g < num_groups; ++g) {
        const size_t begin = g * group_len;
        const size_t end = std::min(n, begin + group_len);
        const size_t group_actual = end - begin;
        const size_t m = collect_group(g, child_data.data(), child_lens.data(),
                                       child_codes.data());
        const size_t num_chunks = std::min(
            parallelism, std::max<size_t>(1, group_actual / run_size));
        TaskGroup group(pool);
        std::vector<size_t> chunk_starts;
        chunk_starts.reserve(num_chunks);
        for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
          const size_t k0 = group_actual * chunk / num_chunks;
          const size_t k1 = group_actual * (chunk + 1) / num_chunks;
          if (k0 >= k1) continue;
          chunk_starts.push_back(k0);
          group.Run([&, k0, k1] {
            mem::ChunkArena arena(budget, /*min_chunk_bytes=*/4096);
            mem::MemoryReservation tree_scratch;
            tree_scratch.ForceReserve(budget, OvcLoserTreeScratchBytes<T>());
            size_t* pos = arena.template AllocateArray<size_t>(m);
            MultiwaySelectGeneric(child_data.data(), child_lens.data(), m, k0,
                                  less, pos);
            OvcLoserTree<T> tree;
            OvcLoserTreeMerge(tree, child_data.data(), child_lens.data(), m,
                              pos, child_codes.data(), dst + begin + k0,
                              dst_codes + begin + k0, k1 - k0);
          });
        }
        group.Wait();
        // Chunked merges emit their first code relative to -inf, but
        // within the group's output run the element at k0 > 0 follows
        // dst[begin + k0 - 1]. Leaving the -inf code in place is not
        // merely conservative — a stale offset can beat a correct deeper
        // offset in the next round and emit the wrong element. Re-code
        // interior chunk boundaries against their true predecessor.
        for (size_t k0 : chunk_starts) {
          if (k0 == 0) continue;
          dst_codes[begin + k0] =
              OvcCodeAgainst(dst[begin + k0], dst[begin + k0 - 1]);
        }
      }
    }
    std::swap(src, dst);
    std::swap(src_codes, dst_codes);
  }
  if (src != data) {
    std::copy(src, src + n, data);
  }
}

#endif  // defined(HWF_HAS_OVC)

}  // namespace internal_sort

/// Sorts `data[0..n)` in parallel into itself, using `scratch` (>= n
/// elements) as the merge ping-pong buffer. This is the allocation-free core
/// of ParallelSort: callers own both buffers, so external sorts can run it
/// over budget-reserved chunks. Per-task merge scratch is drawn from
/// ChunkArenas accounted against `budget` (null = unaccounted).
/// When `use_ovc` is true and T has OvcTraits, the merge rounds run the
/// offset-value-coded kernel (internal_sort::OvcSortRange) — bit-identical
/// output, fewer full-key comparisons. Callers must only pass use_ovc for
/// comparators that order exactly like the OVC word sequence; without
/// 128-bit integer support the flag is ignored and the uncoded reference
/// path runs.
template <typename T, typename Less>
void ParallelSortRange(T* data, size_t n, Less less, ThreadPool& pool,
                       size_t run_size, PartitionScheme scheme, T* scratch,
                       mem::MemoryBudget* budget = nullptr,
                       bool use_ovc = false) {
  HWF_CHECK(run_size > 0);
  HWF_TRACE_SCOPE_ARG("sort.parallel_sort", "n", n);
  if (n <= run_size || pool.num_workers() == 0) {
    Introsort(data, data + n, less, scheme);
    return;
  }
  HWF_CHECK_MSG(scratch != nullptr, "ParallelSortRange needs merge scratch");
#if defined(HWF_HAS_OVC)
  if constexpr (kHasOvcTraits<T>) {
    if (use_ovc) {
      internal_sort::OvcSortRange(data, n, less, pool, run_size, scheme,
                                  scratch, budget);
      return;
    }
  }
#endif
  (void)use_ovc;

  {
    // Phase 1: sort fixed-size runs in parallel.
    HWF_TRACE_SCOPE("sort.run_phase");
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          Introsort(data + lo, data + hi, less, scheme);
        },
        pool, run_size);
  }

  // Phase 2: multiway merge rounds, ping-ponging between buffers. Every
  // round merges up to kSortMergeFanout adjacent runs of `width` elements
  // into one run with a loser tree.
  HWF_TRACE_SCOPE("sort.merge_phase");
  const size_t parallelism = static_cast<size_t>(pool.parallelism());
  T* src = data;
  T* dst = scratch;
  for (size_t width = run_size; width < n; width *= kSortMergeFanout) {
    const size_t group_len = width * kSortMergeFanout;
    const size_t num_groups = (n + group_len - 1) / group_len;
    // Collects the child runs of group g into caller-provided arrays.
    auto collect_group = [&](size_t g, const T** child_data,
                             size_t* child_lens) {
      const size_t begin = g * group_len;
      const size_t end = std::min(n, begin + group_len);
      size_t num_children = 0;
      for (size_t c = 0; c < kSortMergeFanout; ++c) {
        const size_t cb = begin + c * width;
        if (cb >= end) break;
        child_data[num_children] = src + cb;
        child_lens[num_children] = std::min(end, cb + width) - cb;
        ++num_children;
      }
      return num_children;
    };
    if (num_groups >= parallelism) {
      // Many groups: one task merges whole groups sequentially.
      ParallelFor(
          0, num_groups,
          [&](size_t g_lo, size_t g_hi) {
            mem::ChunkArena arena(budget, /*min_chunk_bytes=*/4096);
            mem::MemoryReservation tree_scratch;
            tree_scratch.ForceReserve(
                budget, internal_sort::LoserTreeScratchBytes<T>());
            const T** child_data =
                arena.template AllocateArray<const T*>(kSortMergeFanout);
            size_t* child_lens =
                arena.template AllocateArray<size_t>(kSortMergeFanout);
            size_t* pos = arena.template AllocateArray<size_t>(kSortMergeFanout);
            LoserTree<T, Less> tree;
            for (size_t g = g_lo; g < g_hi; ++g) {
              const size_t begin = g * group_len;
              const size_t end = std::min(n, begin + group_len);
              const size_t m = collect_group(g, child_data, child_lens);
              std::fill(pos, pos + m, 0);
              LoserTreeMerge(tree, child_data, child_lens, m, pos, dst + begin,
                             end - begin, less);
            }
          },
          pool, /*morsel_size=*/1);
    } else {
      // Few large groups (upper rounds): co-select balanced output chunks
      // and merge them independently so all threads stay busy.
      std::vector<const T*> child_data(kSortMergeFanout);
      std::vector<size_t> child_lens(kSortMergeFanout);
      for (size_t g = 0; g < num_groups; ++g) {
        const size_t begin = g * group_len;
        const size_t end = std::min(n, begin + group_len);
        const size_t group_actual = end - begin;
        const size_t m = collect_group(g, child_data.data(), child_lens.data());
        const size_t num_chunks = std::min(
            parallelism, std::max<size_t>(1, group_actual / run_size));
        TaskGroup group(pool);
        for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
          const size_t k0 = group_actual * chunk / num_chunks;
          const size_t k1 = group_actual * (chunk + 1) / num_chunks;
          if (k0 >= k1) continue;
          group.Run([&, k0, k1] {
            mem::ChunkArena arena(budget, /*min_chunk_bytes=*/4096);
            mem::MemoryReservation tree_scratch;
            tree_scratch.ForceReserve(
                budget, internal_sort::LoserTreeScratchBytes<T>());
            size_t* pos = arena.template AllocateArray<size_t>(m);
            MultiwaySelectGeneric(child_data.data(), child_lens.data(), m, k0,
                                  less, pos);
            LoserTree<T, Less> tree;
            LoserTreeMerge(tree, child_data.data(), child_lens.data(), m, pos,
                           dst + begin + k0, k1 - k0, less);
          });
        }
        group.Wait();
      }
    }
    std::swap(src, dst);
  }
  if (src != data) {
    std::copy(src, src + n, data);
  }
}

/// Sorts `data` in parallel: thread-local introsort runs followed by
/// loser-tree multiway merge rounds (fanout kSortMergeFanout).
///
/// This mirrors the paper's preprocessing sort (§5.2): each task sorts a
/// fixed-size run with introsort (3-way quicksort partitioning by default,
/// see PartitionScheme), then sorted runs are combined with balanced
/// multiway merges — whole groups per task while groups are plentiful,
/// co-selected chunks (MultiwaySelectGeneric splits) once they are not.
/// Ties break toward the lower run index, so the result is bit-identical
/// to the earlier pairwise merge cascade. `less` must be a strict weak
/// order; for deterministic results across thread counts, make it a strict
/// total order (e.g., break ties on a row id), which all library call
/// sites do.
///
/// When `budget` is non-null the merge buffer and per-task scratch are
/// accounted against it (ForceReserve — this entry point never spills; use
/// mem::SortWithBudget for the budget-respecting external path).
template <typename T, typename Less>
void ParallelSort(std::vector<T>& data, Less less,
                  ThreadPool& pool = ThreadPool::Default(),
                  size_t run_size = kDefaultMorselSize,
                  PartitionScheme scheme = PartitionScheme::kThreeWay,
                  mem::MemoryBudget* budget = nullptr, bool use_ovc = false) {
  const size_t n = data.size();
  HWF_CHECK(run_size > 0);
  if (n <= run_size || pool.num_workers() == 0) {
    Introsort(data.begin(), data.end(), less, scheme);
    return;
  }
  mem::MemoryReservation buffer_bytes;
  buffer_bytes.ForceReserve(budget, n * sizeof(T));
  std::vector<T> buffer(n);
  ParallelSortRange(data.data(), n, less, pool, run_size, scheme,
                    buffer.data(), budget, use_ovc);
}

}  // namespace hwf

#endif  // HWF_PARALLEL_PARALLEL_SORT_H_
