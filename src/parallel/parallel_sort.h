#ifndef HWF_PARALLEL_PARALLEL_SORT_H_
#define HWF_PARALLEL_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "parallel/introsort.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// Computes the co-rank split for merging two sorted ranges.
///
/// Returns (i, j) with i + j = k such that a sequential merge — taking from
/// `a` on ties — emits exactly merge(a[0..i), b[0..j)) as its first k
/// outputs. This is the "merge path" split used to parallelize merging:
/// every output chunk [k0, k1) can be produced independently from
/// a[i0..i1) and b[j0..j1).
template <typename T, typename Less>
std::pair<size_t, size_t> CoRank(size_t k, const T* a, size_t na, const T* b,
                                 size_t nb, Less less) {
  HWF_DCHECK(k <= na + nb);
  size_t lo = k > nb ? k - nb : 0;
  size_t hi = std::min(k, na);
  while (lo < hi) {
    size_t i = lo + (hi - lo) / 2;
    size_t j = k - i;
    if (i < na && j > 0 && !less(b[j - 1], a[i])) {
      // b[j-1] >= a[i]: a[i] must be among the first k outputs (ties take
      // from a); i is too small.
      lo = i + 1;
    } else if (i > 0 && j < nb && less(b[j], a[i - 1])) {
      // b[j] < a[i-1]: b[j] must precede a[i-1]; i is too big.
      hi = i;
    } else {
      return {i, j};
    }
  }
  return {lo, k - lo};
}

/// Sequentially merges sorted ranges a and b into out; ties take from a.
template <typename T, typename Less>
void MergeSequential(const T* a, size_t na, const T* b, size_t nb, T* out,
                     Less less) {
  size_t i = 0;
  size_t j = 0;
  size_t o = 0;
  while (i < na && j < nb) {
    if (less(b[j], a[i])) {
      out[o++] = b[j++];
    } else {
      out[o++] = a[i++];
    }
  }
  while (i < na) out[o++] = a[i++];
  while (j < nb) out[o++] = b[j++];
}

/// Merges two sorted ranges into `out` using pool parallelism.
///
/// The output is cut into chunks of `grain` elements; co-ranking locates the
/// input split for every chunk, and chunks merge independently. The result
/// is bit-identical to MergeSequential.
template <typename T, typename Less>
void MergeParallel(const T* a, size_t na, const T* b, size_t nb, T* out,
                   Less less, ThreadPool& pool,
                   size_t grain = kDefaultMorselSize) {
  const size_t total = na + nb;
  if (total <= grain || pool.num_workers() == 0) {
    MergeSequential(a, na, b, nb, out, less);
    return;
  }
  ParallelFor(
      0, total,
      [&](size_t k0, size_t k1) {
        auto [i0, j0] = CoRank(k0, a, na, b, nb, less);
        auto [i1, j1] = CoRank(k1, a, na, b, nb, less);
        MergeSequential(a + i0, i1 - i0, b + j0, j1 - j0, out + k0, less);
      },
      pool, grain);
}

/// Sorts `data` in parallel: thread-local introsort runs followed by
/// log(runs) rounds of parallel pairwise merging.
///
/// This mirrors the paper's preprocessing sort (§5.2): each task sorts a
/// fixed-size run with introsort (3-way quicksort partitioning by default,
/// see PartitionScheme), then sorted runs are combined with balanced
/// parallel merges. `less` must be a strict weak order; for deterministic
/// results across thread counts, make it a strict total order (e.g., break
/// ties on a row id), which all library call sites do.
template <typename T, typename Less>
void ParallelSort(std::vector<T>& data, Less less,
                  ThreadPool& pool = ThreadPool::Default(),
                  size_t run_size = kDefaultMorselSize,
                  PartitionScheme scheme = PartitionScheme::kThreeWay) {
  const size_t n = data.size();
  HWF_CHECK(run_size > 0);
  if (n <= run_size || pool.num_workers() == 0) {
    Introsort(data.begin(), data.end(), less, scheme);
    return;
  }

  // Phase 1: sort fixed-size runs in parallel.
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        Introsort(data.begin() + static_cast<ptrdiff_t>(lo),
                  data.begin() + static_cast<ptrdiff_t>(hi), less, scheme);
      },
      pool, run_size);

  // Phase 2: pairwise parallel merge rounds, ping-ponging between buffers.
  std::vector<T> buffer(n);
  T* src = data.data();
  T* dst = buffer.data();
  for (size_t width = run_size; width < n; width *= 2) {
    const size_t num_pairs = (n + 2 * width - 1) / (2 * width);
    if (num_pairs >= static_cast<size_t>(pool.parallelism())) {
      // Many pairs: one task per pair, sequential merge inside.
      ParallelFor(
          0, num_pairs,
          [&](size_t pair_lo, size_t pair_hi) {
            for (size_t p = pair_lo; p < pair_hi; ++p) {
              size_t lo = p * 2 * width;
              size_t mid = std::min(n, lo + width);
              size_t hi = std::min(n, lo + 2 * width);
              MergeSequential(src + lo, mid - lo, src + mid, hi - mid,
                              dst + lo, less);
            }
          },
          pool, /*morsel_size=*/1);
    } else {
      // Few large pairs (upper merge rounds): parallelize inside each merge
      // via co-ranked chunks so all threads stay busy.
      for (size_t p = 0; p < num_pairs; ++p) {
        size_t lo = p * 2 * width;
        size_t mid = std::min(n, lo + width);
        size_t hi = std::min(n, lo + 2 * width);
        MergeParallel(src + lo, mid - lo, src + mid, hi - mid, dst + lo, less,
                      pool, run_size);
      }
    }
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::copy(src, src + n, data.data());
  }
}

}  // namespace hwf

#endif  // HWF_PARALLEL_PARALLEL_SORT_H_
