#ifndef HWF_STORAGE_TABLE_H_
#define HWF_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/column.h"

namespace hwf {

/// A minimal named collection of equally-sized columns.
class Table {
 public:
  Table() = default;

  /// Adds a column; all columns must have the same number of rows.
  void AddColumn(std::string name, Column column);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_.front().size();
  }

  const Column& column(size_t index) const {
    HWF_CHECK(index < columns_.size());
    return columns_[index];
  }
  const std::string& column_name(size_t index) const {
    HWF_CHECK(index < names_.size());
    return names_[index];
  }

  /// Index of the column with the given name, or an error.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// Convenience lookup that aborts on a missing name (for examples/tests).
  size_t MustColumnIndex(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
};

}  // namespace hwf

#endif  // HWF_STORAGE_TABLE_H_
