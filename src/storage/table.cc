#include "storage/table.h"

namespace hwf {

void Table::AddColumn(std::string name, Column column) {
  if (!columns_.empty()) {
    HWF_CHECK_MSG(column.size() == num_rows(),
                  "all table columns must have the same length");
  }
  names_.push_back(std::move(name));
  columns_.push_back(std::move(column));
}

StatusOr<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::InvalidArgument("no column named '" + name + "'");
}

size_t Table::MustColumnIndex(const std::string& name) const {
  StatusOr<size_t> index = ColumnIndex(name);
  HWF_CHECK_MSG(index.ok(), name.c_str());
  return *index;
}

}  // namespace hwf
