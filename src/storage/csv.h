#ifndef HWF_STORAGE_CSV_H_
#define HWF_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace hwf {

/// Parses CSV text into a Table.
///
/// The first record must be a header of column names. Fields may be quoted
/// with double quotes; embedded quotes are escaped by doubling (RFC 4180).
/// Empty unquoted fields are NULL. Column types are inferred from the
/// data: kInt64 if every non-NULL value parses as an integer, kDouble if
/// every non-NULL value is numeric, kString otherwise.
StatusOr<Table> ParseCsv(const std::string& content, char delimiter = ',');

/// Reads and parses a CSV file.
StatusOr<Table> ReadCsvFile(const std::string& path, char delimiter = ',');

/// Renders a table as CSV (header + rows). NULLs render as empty fields;
/// strings are quoted when they contain the delimiter, quotes or newlines.
std::string ToCsv(const Table& table, char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace hwf

#endif  // HWF_STORAGE_CSV_H_
