#ifndef HWF_STORAGE_TPCH_GEN_H_
#define HWF_STORAGE_TPCH_GEN_H_

#include <cstdint>
#include <string>

#include "storage/table.h"

namespace hwf {

/// Synthetic TPC-H-shaped data (see DESIGN.md §4 "Substitutions").
///
/// The paper benchmarks against dbgen output; these generators reproduce
/// the statistical properties the evaluated queries depend on — duplicate
/// frequencies, key cardinalities, and date orderings — without shipping
/// dbgen. All generators are deterministic in (rows, seed).

/// Days between two calendar dates as used by the generators. Dates are
/// stored as int64 days since 1970-01-01.
int64_t DaysSinceEpoch(int year, int month, int day);

/// Renders a day count as "YYYY-MM-DD" (proleptic Gregorian).
std::string DayToString(int64_t days_since_epoch);

/// Generates a lineitem-shaped table with `rows` rows. Columns:
///   l_orderkey      int64   increasing, ~4 rows per order
///   l_partkey       int64   uniform over a TPC-H-scaled key space
///                           (rows / 30 distinct keys, like SF·200k keys
///                           over SF·6M rows)
///   l_quantity      int64   uniform 1..50
///   l_extendedprice double  quantity-scaled price, ~[900, 105000]
///   l_shipdate      int64   uniform days in [1992-01-02, 1998-12-01]
///   l_receiptdate   int64   l_shipdate + uniform(1, 30)
Table GenerateLineitem(size_t rows, uint64_t seed = 42);

/// Generates an orders-shaped table with `rows` rows. Columns:
///   o_orderkey   int64   increasing
///   o_custkey    int64   uniform over rows/10 customers
///   o_orderdate  int64   uniform days in [1992-01-01, 1998-08-02]
///   o_totalprice double  ~[850, 560000]
Table GenerateOrders(size_t rows, uint64_t seed = 43);

/// Generates the tpcc_results table from the paper's §2.4 example:
///   dbsystem         string  one of ~24 system names
///   tps              double  log-uniform, drifting upward over time
///   submission_date  int64   distinct days, increasing
Table GenerateTpccResults(size_t rows, uint64_t seed = 44);

}  // namespace hwf

#endif  // HWF_STORAGE_TPCH_GEN_H_
