#include "storage/tpch_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"

namespace hwf {

namespace {

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

const int kDaysPerMonth[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

}  // namespace

int64_t DaysSinceEpoch(int year, int month, int day) {
  int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += IsLeap(y) ? 366 : 365;
  } else {
    for (int y = year; y < 1970; ++y) days -= IsLeap(y) ? 366 : 365;
  }
  for (int m = 1; m < month; ++m) {
    days += kDaysPerMonth[m - 1];
    if (m == 2 && IsLeap(year)) ++days;
  }
  return days + day - 1;
}

std::string DayToString(int64_t days_since_epoch) {
  int year = 1970;
  int64_t remaining = days_since_epoch;
  while (remaining < 0) {
    --year;
    remaining += IsLeap(year) ? 366 : 365;
  }
  for (;;) {
    int64_t in_year = IsLeap(year) ? 366 : 365;
    if (remaining < in_year) break;
    remaining -= in_year;
    ++year;
  }
  int month = 1;
  for (; month <= 12; ++month) {
    int64_t in_month = kDaysPerMonth[month - 1] + (month == 2 && IsLeap(year));
    if (remaining < in_month) break;
    remaining -= in_month;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d", year, month,
                static_cast<int>(remaining) + 1);
  return buffer;
}

Table GenerateLineitem(size_t rows, uint64_t seed) {
  Pcg32 rng(seed);
  const int64_t ship_lo = DaysSinceEpoch(1992, 1, 2);
  const int64_t ship_hi = DaysSinceEpoch(1998, 12, 1);
  // TPC-H has SF·200k parts for SF·6M lineitems: ~30 rows per part key.
  const int64_t num_parts = std::max<int64_t>(1, static_cast<int64_t>(rows) / 30);

  std::vector<int64_t> orderkey(rows);
  std::vector<int64_t> partkey(rows);
  std::vector<int64_t> quantity(rows);
  std::vector<double> price(rows);
  std::vector<int64_t> shipdate(rows);
  std::vector<int64_t> receiptdate(rows);

  int64_t current_order = 1;
  int64_t lines_left = 1 + static_cast<int64_t>(rng.Bounded(7));
  for (size_t i = 0; i < rows; ++i) {
    if (lines_left == 0) {
      ++current_order;
      lines_left = 1 + static_cast<int64_t>(rng.Bounded(7));
    }
    --lines_left;
    orderkey[i] = current_order;
    partkey[i] = 1 + rng.Uniform(0, num_parts - 1);
    quantity[i] = 1 + static_cast<int64_t>(rng.Bounded(50));
    // dbgen: extendedprice = quantity * p_retailprice; retail price is
    // roughly uniform in [900, 2100].
    const double retail = 900.0 + rng.NextDouble() * 1200.0;
    price[i] = std::round(static_cast<double>(quantity[i]) * retail * 100.0) /
               100.0;
    shipdate[i] = rng.Uniform(ship_lo, ship_hi);
    receiptdate[i] = shipdate[i] + rng.Uniform(1, 30);
  }

  Table table;
  table.AddColumn("l_orderkey", Column::FromInt64(std::move(orderkey)));
  table.AddColumn("l_partkey", Column::FromInt64(std::move(partkey)));
  table.AddColumn("l_quantity", Column::FromInt64(std::move(quantity)));
  table.AddColumn("l_extendedprice", Column::FromDouble(std::move(price)));
  table.AddColumn("l_shipdate", Column::FromInt64(std::move(shipdate)));
  table.AddColumn("l_receiptdate", Column::FromInt64(std::move(receiptdate)));
  return table;
}

Table GenerateOrders(size_t rows, uint64_t seed) {
  Pcg32 rng(seed);
  const int64_t date_lo = DaysSinceEpoch(1992, 1, 1);
  const int64_t date_hi = DaysSinceEpoch(1998, 8, 2);
  const int64_t num_customers =
      std::max<int64_t>(1, static_cast<int64_t>(rows) / 10);

  std::vector<int64_t> orderkey(rows);
  std::vector<int64_t> custkey(rows);
  std::vector<int64_t> orderdate(rows);
  std::vector<double> totalprice(rows);
  for (size_t i = 0; i < rows; ++i) {
    orderkey[i] = static_cast<int64_t>(i) + 1;
    custkey[i] = 1 + rng.Uniform(0, num_customers - 1);
    orderdate[i] = rng.Uniform(date_lo, date_hi);
    totalprice[i] = 850.0 + rng.NextDouble() * 559150.0;
  }

  Table table;
  table.AddColumn("o_orderkey", Column::FromInt64(std::move(orderkey)));
  table.AddColumn("o_custkey", Column::FromInt64(std::move(custkey)));
  table.AddColumn("o_orderdate", Column::FromInt64(std::move(orderdate)));
  table.AddColumn("o_totalprice", Column::FromDouble(std::move(totalprice)));
  return table;
}

Table GenerateTpccResults(size_t rows, uint64_t seed) {
  static const char* kSystems[] = {
      "Hyper",      "Umbra",     "DuckDB",    "Postgres",  "SQLite",
      "Snowflake",  "Oracle",    "SQLServer", "MySQL",     "MariaDB",
      "Greenplum",  "Vertica",   "MonetDB",   "ClickHouse", "Druid",
      "Presto",     "Trino",     "Spark",     "Impala",    "Hive",
      "Redshift",   "BigQuery",  "Synapse",   "Exasol",
  };
  constexpr size_t kNumSystems = sizeof(kSystems) / sizeof(kSystems[0]);

  Pcg32 rng(seed);
  std::vector<std::string> dbsystem(rows);
  std::vector<double> tps(rows);
  std::vector<int64_t> submission(rows);
  int64_t date = DaysSinceEpoch(1992, 7, 1);
  for (size_t i = 0; i < rows; ++i) {
    dbsystem[i] = kSystems[rng.Bounded(kNumSystems)];
    // Hardware improves over time: throughput drifts upward log-uniformly.
    const double progress = static_cast<double>(i) / std::max<size_t>(rows, 1);
    const double magnitude = 2.0 + 4.0 * progress + rng.NextDouble() * 1.5;
    tps[i] = std::round(std::pow(10.0, magnitude) * 100.0) / 100.0;
    submission[i] = date;
    date += 1 + static_cast<int64_t>(rng.Bounded(45));
  }

  Table table;
  table.AddColumn("dbsystem", Column::FromString(std::move(dbsystem)));
  table.AddColumn("tps", Column::FromDouble(std::move(tps)));
  table.AddColumn("submission_date", Column::FromInt64(std::move(submission)));
  return table;
}

}  // namespace hwf
