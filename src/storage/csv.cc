#include "storage/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace hwf {

namespace {

struct Cell {
  std::string text;
  bool quoted = false;  // Quoted empty fields are empty strings, not NULL.
};

/// Splits CSV content into records of cells. Handles quoted fields with
/// doubled-quote escapes and embedded delimiters/newlines.
StatusOr<std::vector<std::vector<Cell>>> Tokenize(const std::string& content,
                                                  char delimiter) {
  std::vector<std::vector<Cell>> records;
  std::vector<Cell> record;
  Cell cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    record.push_back(std::move(cell));
    cell = Cell();
    cell_started = false;
  };
  auto end_record = [&] {
    end_cell();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          cell.text.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.text.push_back(c);
      }
      continue;
    }
    if (c == '"' && !cell_started) {
      in_quotes = true;
      cell.quoted = true;
      cell_started = true;
    } else if (c == delimiter) {
      end_cell();
    } else if (c == '\n') {
      // Swallow a preceding \r (CRLF).
      if (!cell.text.empty() && cell.text.back() == '\r') {
        cell.text.pop_back();
      }
      if (record.empty() && !cell_started && cell.text.empty()) {
        continue;  // Blank line (e.g. trailing newline) — skipped.
      }
      end_record();
    } else {
      cell.text.push_back(c);
      cell_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV ends inside a quoted field");
  }
  if (cell_started || !record.empty()) {
    if (!cell.text.empty() && cell.text.back() == '\r') cell.text.pop_back();
    end_record();
  }
  return records;
}

bool ParseInt(const std::string& text, int64_t* value) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *value = parsed;
  return true;
}

bool ParseDouble(const std::string& text, double* value) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *value = parsed;
  return true;
}

bool NeedsQuoting(const std::string& text, char delimiter) {
  return text.find_first_of(std::string("\"\n\r") + delimiter) !=
         std::string::npos;
}

}  // namespace

StatusOr<Table> ParseCsv(const std::string& content, char delimiter) {
  StatusOr<std::vector<std::vector<Cell>>> tokenized =
      Tokenize(content, delimiter);
  if (!tokenized.ok()) return tokenized.status();
  const std::vector<std::vector<Cell>>& records = *tokenized;
  if (records.empty()) {
    return Status::InvalidArgument("CSV has no header record");
  }
  const std::vector<Cell>& header = records[0];
  const size_t num_columns = header.size();
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != num_columns) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(r + 1) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(num_columns));
    }
  }

  const size_t num_rows = records.size() - 1;
  Table table;
  for (size_t c = 0; c < num_columns; ++c) {
    // Type inference over all non-NULL cells of the column.
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (size_t r = 1; r <= num_rows; ++r) {
      const Cell& cell = records[r][c];
      if (cell.text.empty() && !cell.quoted) continue;  // NULL
      any_value = true;
      int64_t i;
      double d;
      if (!ParseInt(cell.text, &i)) all_int = false;
      if (!ParseDouble(cell.text, &d)) all_double = false;
      if (!all_double) break;
    }
    DataType type = DataType::kString;
    if (any_value && all_int) {
      type = DataType::kInt64;
    } else if (any_value && all_double) {
      type = DataType::kDouble;
    }

    Column column(type);
    column.Reserve(num_rows);
    for (size_t r = 1; r <= num_rows; ++r) {
      const Cell& cell = records[r][c];
      if (cell.text.empty() && !cell.quoted) {
        column.AppendNull();
        continue;
      }
      switch (type) {
        case DataType::kInt64: {
          int64_t value = 0;
          ParseInt(cell.text, &value);
          column.AppendInt64(value);
          break;
        }
        case DataType::kDouble: {
          double value = 0;
          ParseDouble(cell.text, &value);
          column.AppendDouble(value);
          break;
        }
        case DataType::kString:
          column.AppendString(cell.text);
          break;
      }
    }
    table.AddColumn(header[c].text, std::move(column));
  }
  return table;
}

StatusOr<Table> ReadCsvFile(const std::string& path, char delimiter) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  std::string content;
  char buffer[1 << 16];
  size_t bytes;
  while ((bytes = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, bytes);
  }
  std::fclose(file);
  return ParseCsv(content, delimiter);
}

std::string ToCsv(const Table& table, char delimiter) {
  std::string out;
  auto append_field = [&](const std::string& text) {
    if (NeedsQuoting(text, delimiter)) {
      out.push_back('"');
      for (char c : text) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += text;
    }
  };

  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(delimiter);
    append_field(table.column_name(c));
  }
  out.push_back('\n');

  char buffer[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(delimiter);
      const Column& column = table.column(c);
      if (column.IsNull(r)) continue;  // NULL = empty field.
      switch (column.type()) {
        case DataType::kInt64:
          std::snprintf(buffer, sizeof(buffer), "%lld",
                        static_cast<long long>(column.GetInt64(r)));
          out += buffer;
          break;
        case DataType::kDouble:
          std::snprintf(buffer, sizeof(buffer), "%.17g", column.GetDouble(r));
          out += buffer;
          break;
        case DataType::kString:
          append_field(column.GetString(r));
          break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for writing: " + std::strerror(errno));
  }
  const std::string content = ToCsv(table, delimiter);
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (written != content.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace hwf
