#include "storage/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace hwf {

namespace {

struct Cell {
  std::string text;
  bool quoted = false;  // Quoted empty fields are empty strings, not NULL.
};

/// Incremental CSV tokenizer: feed it the input in arbitrary chunks, then
/// call Finish() once for the tokenized records. Handles quoted fields with
/// doubled-quote escapes and embedded delimiters/newlines; all state —
/// including the lookahead for a doubled quote — survives chunk boundaries,
/// so file readers never need to materialize the whole input in memory.
class CsvTokenizer {
 public:
  explicit CsvTokenizer(char delimiter) : delimiter_(delimiter) {}

  void Feed(const char* data, size_t size) {
    for (size_t i = 0; i < size; ++i) Process(data[i]);
  }

  StatusOr<std::vector<std::vector<Cell>>> Finish() {
    // A pending quote at end of input is the field's closing quote.
    if (quote_pending_) {
      quote_pending_ = false;
      in_quotes_ = false;
    }
    if (in_quotes_) {
      return Status::InvalidArgument("CSV ends inside a quoted field");
    }
    if (cell_started_ || !record_.empty()) {
      if (!cell_.text.empty() && cell_.text.back() == '\r') {
        cell_.text.pop_back();
      }
      EndRecord();
    }
    return std::move(records_);
  }

 private:
  void Process(char c) {
    if (quote_pending_) {
      // The previous character was a quote inside a quoted field: a second
      // quote is an escaped literal quote, anything else closed the field.
      quote_pending_ = false;
      if (c == '"') {
        cell_.text.push_back('"');
        return;
      }
      in_quotes_ = false;
      // Fall through: c is re-examined in unquoted context.
    } else if (in_quotes_) {
      if (c == '"') {
        quote_pending_ = true;
      } else {
        cell_.text.push_back(c);
      }
      return;
    }
    if (c == '"' && !cell_started_) {
      in_quotes_ = true;
      cell_.quoted = true;
      cell_started_ = true;
    } else if (c == delimiter_) {
      EndCell();
    } else if (c == '\n') {
      // Swallow a preceding \r (CRLF).
      if (!cell_.text.empty() && cell_.text.back() == '\r') {
        cell_.text.pop_back();
      }
      if (record_.empty() && !cell_started_ && cell_.text.empty()) {
        // Blank line: kept as a zero-cell marker so BuildTable can decide.
        // In a one-column table an empty line IS a record (one NULL
        // field) — dropping it here would lose rows over the wire.
        records_.emplace_back();
        return;
      }
      EndRecord();
    } else {
      cell_.text.push_back(c);
      cell_started_ = true;
    }
  }

  void EndCell() {
    record_.push_back(std::move(cell_));
    cell_ = Cell();
    cell_started_ = false;
  }

  void EndRecord() {
    EndCell();
    records_.push_back(std::move(record_));
    record_.clear();
  }

  const char delimiter_;
  std::vector<std::vector<Cell>> records_;
  std::vector<Cell> record_;
  Cell cell_;
  bool in_quotes_ = false;
  bool cell_started_ = false;
  bool quote_pending_ = false;
};

bool ParseInt(const std::string& text, int64_t* value) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *value = parsed;
  return true;
}

bool ParseDouble(const std::string& text, double* value) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *value = parsed;
  return true;
}

bool NeedsQuoting(const std::string& text, char delimiter) {
  return text.find_first_of(std::string("\"\n\r") + delimiter) !=
         std::string::npos;
}

/// Type inference + column materialization over tokenized records.
StatusOr<Table> BuildTable(std::vector<std::vector<Cell>> records) {
  // Zero-cell records are blank lines. Leading ones (before the header)
  // are noise; between data records their meaning depends on the width:
  // a one-column table serializes a NULL row as an empty line, so there
  // the blank is a real record, while in a wider table no row can
  // serialize that way and the blank stays skipped for leniency with
  // hand-authored files.
  size_t first = 0;
  while (first < records.size() && records[first].empty()) ++first;
  if (first == records.size()) {
    return Status::InvalidArgument("CSV has no header record");
  }
  const std::vector<Cell> header = std::move(records[first]);
  const size_t num_columns = header.size();
  std::vector<std::vector<Cell>> rows;
  rows.reserve(records.size() - first - 1);
  for (size_t r = first + 1; r < records.size(); ++r) {
    if (records[r].empty()) {
      if (num_columns == 1) rows.push_back({Cell()});
      continue;
    }
    rows.push_back(std::move(records[r]));
  }
  records.clear();
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != num_columns) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(r + 2) + " has " +
          std::to_string(rows[r].size()) + " fields, expected " +
          std::to_string(num_columns));
    }
  }

  const size_t num_rows = rows.size();
  Table table;
  for (size_t c = 0; c < num_columns; ++c) {
    // Type inference over all non-NULL cells of the column.
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (size_t r = 0; r < num_rows; ++r) {
      const Cell& cell = rows[r][c];
      if (cell.text.empty() && !cell.quoted) continue;  // NULL
      any_value = true;
      int64_t i;
      double d;
      if (!ParseInt(cell.text, &i)) all_int = false;
      if (!ParseDouble(cell.text, &d)) all_double = false;
      if (!all_double) break;
    }
    DataType type = DataType::kString;
    if (any_value && all_int) {
      type = DataType::kInt64;
    } else if (any_value && all_double) {
      type = DataType::kDouble;
    }

    Column column(type);
    column.Reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      const Cell& cell = rows[r][c];
      if (cell.text.empty() && !cell.quoted) {
        column.AppendNull();
        continue;
      }
      switch (type) {
        case DataType::kInt64: {
          int64_t value = 0;
          ParseInt(cell.text, &value);
          column.AppendInt64(value);
          break;
        }
        case DataType::kDouble: {
          double value = 0;
          ParseDouble(cell.text, &value);
          column.AppendDouble(value);
          break;
        }
        case DataType::kString:
          column.AppendString(cell.text);
          break;
      }
    }
    table.AddColumn(header[c].text, std::move(column));
  }
  return table;
}

}  // namespace

StatusOr<Table> ParseCsv(const std::string& content, char delimiter) {
  CsvTokenizer tokenizer(delimiter);
  tokenizer.Feed(content.data(), content.size());
  StatusOr<std::vector<std::vector<Cell>>> records = tokenizer.Finish();
  if (!records.ok()) return records.status();
  return BuildTable(*std::move(records));
}

StatusOr<Table> ReadCsvFile(const std::string& path, char delimiter) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  // Stream the file through the tokenizer chunk by chunk — peak memory is
  // the tokenized cells, never cells plus a whole-file copy.
  CsvTokenizer tokenizer(delimiter);
  char buffer[1 << 16];
  size_t bytes;
  while ((bytes = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    tokenizer.Feed(buffer, bytes);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::InvalidArgument("error reading '" + path + "'");
  }
  StatusOr<std::vector<std::vector<Cell>>> records = tokenizer.Finish();
  if (!records.ok()) return records.status();
  return BuildTable(*std::move(records));
}

std::string ToCsv(const Table& table, char delimiter) {
  std::string out;
  auto append_field = [&](const std::string& text) {
    if (NeedsQuoting(text, delimiter)) {
      out.push_back('"');
      for (char c : text) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += text;
    }
  };

  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(delimiter);
    append_field(table.column_name(c));
  }
  out.push_back('\n');

  char buffer[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(delimiter);
      const Column& column = table.column(c);
      if (column.IsNull(r)) continue;  // NULL = empty field.
      switch (column.type()) {
        case DataType::kInt64:
          std::snprintf(buffer, sizeof(buffer), "%lld",
                        static_cast<long long>(column.GetInt64(r)));
          out += buffer;
          break;
        case DataType::kDouble:
          std::snprintf(buffer, sizeof(buffer), "%.17g", column.GetDouble(r));
          out += buffer;
          break;
        case DataType::kString:
          append_field(column.GetString(r));
          break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for writing: " + std::strerror(errno));
  }
  const std::string content = ToCsv(table, delimiter);
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (written != content.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace hwf
