#include "storage/column.h"

#include <cmath>
#include <cstring>

namespace hwf {

namespace {

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(const char* data, size_t len) {
  // FNV-1a with a strengthening final mix.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

constexpr uint64_t kNullHash = 0x6e756c6c6e756c6cULL;  // "nullnull"

}  // namespace

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  if (is_null_ || other.is_null_) return is_null_ == other.is_null_;
  switch (type_) {
    case DataType::kInt64:
      return int_ == other.int_;
    case DataType::kDouble:
      return double_ == other.double_;
    case DataType::kString:
      return string_ == other.string_;
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(int_);
    case DataType::kDouble: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%g", double_);
      return buffer;
    }
    case DataType::kString:
      return "'" + string_ + "'";
  }
  return "?";
}

Column::Column(DataType type, size_t size) : type_(type) {
  validity_.assign(size, 0);
  switch (type_) {
    case DataType::kInt64:
      ints_.assign(size, 0);
      break;
    case DataType::kDouble:
      doubles_.assign(size, 0);
      break;
    case DataType::kString:
      strings_.assign(size, std::string());
      break;
  }
}

Column Column::FromInt64(std::vector<int64_t> values) {
  Column column(DataType::kInt64);
  column.validity_.assign(values.size(), 1);
  column.ints_ = std::move(values);
  return column;
}

Column Column::FromDouble(std::vector<double> values) {
  Column column(DataType::kDouble);
  column.validity_.assign(values.size(), 1);
  column.doubles_ = std::move(values);
  return column;
}

Column Column::FromString(std::vector<std::string> values) {
  Column column(DataType::kString);
  column.validity_.assign(values.size(), 1);
  column.strings_ = std::move(values);
  return column;
}

void Column::Reserve(size_t capacity) {
  validity_.reserve(capacity);
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(capacity);
      break;
    case DataType::kDouble:
      doubles_.reserve(capacity);
      break;
    case DataType::kString:
      strings_.reserve(capacity);
      break;
  }
}

void Column::AppendInt64(int64_t value) {
  HWF_CHECK(type_ == DataType::kInt64);
  ints_.push_back(value);
  validity_.push_back(1);
}

void Column::AppendDouble(double value) {
  HWF_CHECK(type_ == DataType::kDouble);
  doubles_.push_back(value);
  validity_.push_back(1);
}

void Column::AppendString(std::string value) {
  HWF_CHECK(type_ == DataType::kString);
  strings_.push_back(std::move(value));
  validity_.push_back(1);
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  validity_.push_back(0);
}

void Column::AppendValue(const Value& value) {
  HWF_CHECK(value.type() == type_);
  if (value.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(value.int64());
      break;
    case DataType::kDouble:
      AppendDouble(value.dbl());
      break;
    case DataType::kString:
      AppendString(value.str());
      break;
  }
}

void Column::SetInt64(size_t row, int64_t value) {
  HWF_CHECK(type_ == DataType::kInt64);
  HWF_DCHECK(row < size());
  ints_[row] = value;
  validity_[row] = 1;
}

void Column::SetDouble(size_t row, double value) {
  HWF_CHECK(type_ == DataType::kDouble);
  HWF_DCHECK(row < size());
  doubles_[row] = value;
  validity_[row] = 1;
}

void Column::SetString(size_t row, std::string value) {
  HWF_CHECK(type_ == DataType::kString);
  HWF_DCHECK(row < size());
  strings_[row] = std::move(value);
  validity_[row] = 1;
}

void Column::SetNull(size_t row) {
  HWF_DCHECK(row < size());
  validity_[row] = 0;
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null(type_);
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(ints_[row]);
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kString:
      return Value::String(strings_[row]);
  }
  return Value::Null(type_);
}

int Column::Compare(size_t a, size_t b) const {
  HWF_DCHECK(!IsNull(a) && !IsNull(b));
  switch (type_) {
    case DataType::kInt64:
      return ints_[a] < ints_[b] ? -1 : (ints_[a] > ints_[b] ? 1 : 0);
    case DataType::kDouble:
      return doubles_[a] < doubles_[b] ? -1 : (doubles_[a] > doubles_[b] ? 1 : 0);
    case DataType::kString:
      return strings_[a].compare(strings_[b]) < 0
                 ? -1
                 : (strings_[a] == strings_[b] ? 0 : 1);
  }
  return 0;
}

uint64_t Column::Hash(size_t row) const {
  if (IsNull(row)) return kNullHash;
  switch (type_) {
    case DataType::kInt64:
      return Mix64(static_cast<uint64_t>(ints_[row]));
    case DataType::kDouble: {
      double d = doubles_[row];
      if (d == 0.0) d = 0.0;  // Canonicalize -0.0 to +0.0.
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case DataType::kString:
      return HashBytes(strings_[row].data(), strings_[row].size());
  }
  return 0;
}

}  // namespace hwf
