#ifndef HWF_STORAGE_COLUMN_H_
#define HWF_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace hwf {

/// Column data types. The library is deliberately small here: the paper's
/// algorithms reduce every SQL type to integers during preprocessing
/// (§5.1), so three logical types suffice to express all evaluated queries.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeName(DataType type);

/// A nullable scalar, used for literals and row-wise access in tests and
/// examples. Columnar code paths use the typed Column accessors instead.
class Value {
 public:
  static Value Null(DataType type) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Int64(int64_t value) {
    Value v;
    v.type_ = DataType::kInt64;
    v.int_ = value;
    return v;
  }
  static Value Double(double value) {
    Value v;
    v.type_ = DataType::kDouble;
    v.double_ = value;
    return v;
  }
  static Value String(std::string value) {
    Value v;
    v.type_ = DataType::kString;
    v.string_ = std::move(value);
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return is_null_; }
  int64_t int64() const {
    HWF_DCHECK(!is_null_ && type_ == DataType::kInt64);
    return int_;
  }
  double dbl() const {
    HWF_DCHECK(!is_null_ && type_ == DataType::kDouble);
    return double_;
  }
  const std::string& str() const {
    HWF_DCHECK(!is_null_ && type_ == DataType::kString);
    return string_;
  }

  bool operator==(const Value& other) const;

  /// Human-readable rendering ("NULL", "42", "3.14", "'abc'").
  std::string ToString() const;

 private:
  DataType type_ = DataType::kInt64;
  bool is_null_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
};

/// A typed, nullable, in-memory column.
///
/// Values are stored in a contiguous typed vector plus a byte validity
/// mask. Columns support both append-style construction (data loading) and
/// positional writes into a pre-sized all-NULL column (result assembly in
/// the window executor).
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  /// Creates a column of `size` NULL entries to be filled positionally.
  Column(DataType type, size_t size);

  /// Convenience factories from plain vectors (all values valid).
  static Column FromInt64(std::vector<int64_t> values);
  static Column FromDouble(std::vector<double> values);
  static Column FromString(std::vector<std::string> values);

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }

  void Reserve(size_t capacity);

  void AppendInt64(int64_t value);
  void AppendDouble(double value);
  void AppendString(std::string value);
  void AppendNull();
  void AppendValue(const Value& value);

  void SetInt64(size_t row, int64_t value);
  void SetDouble(size_t row, double value);
  void SetString(size_t row, std::string value);
  void SetNull(size_t row);

  bool IsNull(size_t row) const {
    HWF_DCHECK(row < validity_.size());
    return validity_[row] == 0;
  }
  int64_t GetInt64(size_t row) const {
    HWF_DCHECK(type_ == DataType::kInt64 && !IsNull(row));
    return ints_[row];
  }
  double GetDouble(size_t row) const {
    HWF_DCHECK(type_ == DataType::kDouble && !IsNull(row));
    return doubles_[row];
  }
  const std::string& GetString(size_t row) const {
    HWF_DCHECK(type_ == DataType::kString && !IsNull(row));
    return strings_[row];
  }

  /// Numeric value as double regardless of kInt64/kDouble storage.
  /// Checked against kString.
  double GetNumeric(size_t row) const {
    HWF_DCHECK(!IsNull(row));
    if (type_ == DataType::kInt64) return static_cast<double>(ints_[row]);
    HWF_CHECK(type_ == DataType::kDouble);
    return doubles_[row];
  }

  /// Hints that `row` is about to be read (validity byte + typed value).
  /// Batched consumers prefetch a few rows ahead so random-access gathers
  /// overlap their cache misses.
  void PrefetchRow(size_t row) const {
    HWF_DCHECK(row < validity_.size());
    HWF_PREFETCH(validity_.data() + row);
    switch (type_) {
      case DataType::kInt64:
        HWF_PREFETCH(ints_.data() + row);
        break;
      case DataType::kDouble:
        HWF_PREFETCH(doubles_.data() + row);
        break;
      case DataType::kString:
        HWF_PREFETCH(strings_.data() + row);
        break;
    }
  }

  Value GetValue(size_t row) const;

  /// Three-way comparison of two non-NULL entries: negative, 0, positive.
  /// NULL ordering policy is the caller's responsibility.
  int Compare(size_t a, size_t b) const;

  /// A 64-bit value hash for partitioning and duplicate detection. Equal
  /// values hash equally across rows; NULL has a dedicated hash.
  uint64_t Hash(size_t row) const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> validity_;
};

}  // namespace hwf

#endif  // HWF_STORAGE_COLUMN_H_
