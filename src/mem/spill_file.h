#ifndef HWF_MEM_SPILL_FILE_H_
#define HWF_MEM_SPILL_FILE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace hwf {
namespace mem {

/// Spill I/O granularity. Spilled containers lay their rows out in pages of
/// this size (a row never straddles a page), so one random probe costs at
/// most one page read, and the thread-local page cache below can key on
/// page-aligned offsets.
inline constexpr size_t kSpillPageBytes = 64 * 1024;

/// File-offset alignment for the start of each run/region inside a shared
/// spill file. Matches the typical filesystem page so buffered sequential
/// writes stay aligned.
inline constexpr size_t kSpillAlignBytes = 4096;

inline constexpr uint64_t AlignSpillOffset(uint64_t offset) {
  return (offset + kSpillAlignBytes - 1) & ~uint64_t{kSpillAlignBytes - 1};
}

/// Directory spill files are created in: $HWF_SPILL_DIR, else $TMPDIR,
/// else /tmp.
std::string SpillDir();

/// An anonymous temp file for spilled data.
///
/// The file is created with mkstemp and unlinked immediately, so it
/// disappears when the descriptor closes (including on crash). Reads use
/// pread and are safe from any thread; writes use pwrite and callers
/// serialize per region (each writer owns a disjoint offset range).
class SpillFile {
 public:
  /// Creates an unlinked temp file in `dir` (empty = SpillDir()).
  static StatusOr<std::unique_ptr<SpillFile>> Create(std::string dir = "");

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  Status WriteAt(uint64_t offset, const void* data, size_t bytes);
  Status ReadAt(uint64_t offset, void* data, size_t bytes) const;

  /// One past the highest byte ever written.
  uint64_t size_bytes() const { return size_bytes_; }

  /// Process-unique id; the page cache keys on it so a recycled SpillFile*
  /// address can never alias a dead file's cached pages.
  uint64_t uid() const { return uid_; }

  /// Reserves a region of `bytes` starting at the next aligned offset.
  /// Serialized by the caller (regions are handed out during single-threaded
  /// setup; I/O into them may then proceed concurrently).
  uint64_t AllocateRegion(uint64_t bytes);

 private:
  SpillFile(int fd, uint64_t uid) : fd_(fd), uid_(uid) {}

  int fd_ = -1;
  uint64_t uid_ = 0;
  uint64_t size_bytes_ = 0;
  uint64_t next_region_ = 0;
};

/// Thread-local direct-mapped cache of spill pages.
///
/// Returns a pointer to `bytes` bytes of `file` starting at `offset`
/// (which must be kSpillPageBytes-aligned relative to region starts the
/// caller controls). The pointer stays valid on the calling thread until a
/// later lookup evicts the slot. On miss the page is read with pread; the
/// cache is per-thread so no locking is involved.
///
/// Returns nullptr on I/O error (callers HWF_CHECK; spill files are
/// node-local temp files, so a failed read is not user-recoverable).
const std::byte* SpillPageCacheLookup(const SpillFile& file, uint64_t offset,
                                      size_t bytes);

/// Buffered sequential writer of fixed-width rows into a region of a
/// SpillFile. Rows are packed into kSpillPageBytes pages, each page holding
/// floor(page/row_size) rows; the tail of every page is padding so no row
/// straddles a page boundary.
template <typename T>
class RunWriter {
  static_assert(std::is_trivially_copyable_v<T>,
                "spilled rows must be trivially copyable");

 public:
  static constexpr size_t kRowsPerPage = kSpillPageBytes / sizeof(T);
  static_assert(kSpillPageBytes / sizeof(int64_t) > 0, "page too small");

  RunWriter(SpillFile* file, uint64_t region_offset)
      : file_(file), region_offset_(region_offset) {
    buffer_.resize(kSpillPageBytes);
  }

  /// Appends `count` rows.
  Status AppendBatch(const T* rows, size_t count) {
    while (count > 0) {
      const size_t room = kRowsPerPage - rows_in_page_;
      const size_t take = count < room ? count : room;
      std::memcpy(buffer_.data() + rows_in_page_ * sizeof(T), rows,
                  take * sizeof(T));
      rows_in_page_ += take;
      rows_written_ += take;
      rows += take;
      count -= take;
      if (rows_in_page_ == kRowsPerPage) {
        Status status = FlushPage();
        if (!status.ok()) return status;
      }
    }
    return Status::OK();
  }

  Status Append(const T& row) { return AppendBatch(&row, 1); }

  /// Writes out the final partial page. Must be called once at the end.
  Status Finish() {
    if (rows_in_page_ > 0) return FlushPage();
    return Status::OK();
  }

  uint64_t rows_written() const { return rows_written_; }

  /// Bytes of file the writer consumed (full pages, including padding).
  uint64_t bytes_on_disk() const {
    return (pages_written_ + (rows_in_page_ > 0 ? 1 : 0)) * kSpillPageBytes;
  }

  /// Upper bound of the region size needed for `rows` rows — use with
  /// SpillFile::AllocateRegion before writing.
  static uint64_t RegionBytesFor(uint64_t rows) {
    return ((rows + kRowsPerPage - 1) / kRowsPerPage) * kSpillPageBytes;
  }

 private:
  Status FlushPage() {
    Status status =
        file_->WriteAt(region_offset_ + pages_written_ * kSpillPageBytes,
                       buffer_.data(), kSpillPageBytes);
    if (!status.ok()) return status;
    ++pages_written_;
    rows_in_page_ = 0;
    return Status::OK();
  }

  SpillFile* file_;
  uint64_t region_offset_;
  uint64_t pages_written_ = 0;
  uint64_t rows_written_ = 0;
  size_t rows_in_page_ = 0;
  std::vector<std::byte> buffer_;
};

/// Buffered sequential reader over a region written by RunWriter<T>.
/// Exposes the buffered rows directly so merge loops can bind a loser-tree
/// source to `data()`/`buffered_rows()` and Refill() when drained.
template <typename T>
class RunReader {
  static_assert(std::is_trivially_copyable_v<T>,
                "spilled rows must be trivially copyable");

 public:
  static constexpr size_t kRowsPerPage = RunWriter<T>::kRowsPerPage;

  /// `pages_per_refill` controls the buffer size (sequential readahead).
  RunReader(const SpillFile* file, uint64_t region_offset, uint64_t num_rows,
            size_t pages_per_refill = 4)
      : file_(file),
        region_offset_(region_offset),
        num_rows_(num_rows),
        pages_per_refill_(pages_per_refill > 0 ? pages_per_refill : 1) {
    buffer_.resize(pages_per_refill_ * kRowsPerPage);
  }

  /// Rows currently buffered; valid until the next Refill().
  const T* data() const { return buffer_.data(); }
  size_t buffered_rows() const { return buffered_rows_; }

  /// True once every row has been surfaced through the buffer.
  bool exhausted() const {
    return rows_consumed_ == num_rows_ && buffered_rows_ == 0;
  }
  uint64_t rows_remaining() const {
    return num_rows_ - rows_consumed_ + buffered_rows_;
  }

  /// Replaces the buffer contents with the next batch of rows. Returns the
  /// number of rows now buffered (0 = region fully consumed).
  StatusOr<size_t> Refill() {
    buffered_rows_ = 0;
    size_t out = 0;
    while (out < buffer_.size() && rows_consumed_ < num_rows_) {
      const uint64_t page = rows_consumed_ / kRowsPerPage;
      const size_t in_page = static_cast<size_t>(rows_consumed_ % kRowsPerPage);
      const uint64_t rows_left_in_page =
          std::min<uint64_t>(kRowsPerPage - in_page,
                             num_rows_ - rows_consumed_);
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(rows_left_in_page, buffer_.size() - out));
      Status status = file_->ReadAt(
          region_offset_ + page * kSpillPageBytes + in_page * sizeof(T),
          buffer_.data() + out, take * sizeof(T));
      if (!status.ok()) return status;
      out += take;
      rows_consumed_ += take;
    }
    buffered_rows_ = out;
    return out;
  }

 private:
  const SpillFile* file_;
  uint64_t region_offset_;
  uint64_t num_rows_;
  size_t pages_per_refill_;
  uint64_t rows_consumed_ = 0;
  size_t buffered_rows_ = 0;
  std::vector<T> buffer_;
};

}  // namespace mem
}  // namespace hwf

#endif  // HWF_MEM_SPILL_FILE_H_
