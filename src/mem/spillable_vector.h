#ifndef HWF_MEM_SPILLABLE_VECTOR_H_
#define HWF_MEM_SPILLABLE_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/search.h"
#include "common/status.h"
#include "mem/memory_budget.h"
#include "mem/spill_file.h"

namespace hwf {
namespace mem {

/// A vector of trivially-copyable rows that can be evicted to a spill file
/// and read back page-wise.
///
/// Lifecycle: the container starts resident (a plain std::vector<T> whose
/// bytes are accounted against an attached MemoryBudget). `Spill()` writes
/// the rows into a page-packed region of a SpillFile, frees the vector, and
/// releases the reservation; after that every access goes through the
/// thread-local spill page cache, one page read per cache miss. The
/// container is immutable once spilled — eviction happens between build
/// phases, never during concurrent probes.
///
/// The resident fast path is a branch plus a vector index, so wrapping hot
/// structures in SpillableVector costs nothing measurable when no budget is
/// in play.
template <typename T>
class SpillableVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "spillable rows must be trivially copyable");

 public:
  static constexpr size_t kRowsPerPage = kSpillPageBytes / sizeof(T);

  SpillableVector() = default;
  SpillableVector(SpillableVector&&) noexcept = default;
  SpillableVector& operator=(SpillableVector&&) noexcept = default;
  SpillableVector(const SpillableVector&) = delete;
  SpillableVector& operator=(const SpillableVector&) = delete;

  /// Budget future resident bytes against `budget` (may be null).
  void Attach(MemoryBudget* budget) { budget_ = budget; }

  /// Resizes the resident vector, force-reserving the byte delta. Callers
  /// that want denial-driven eviction TryReserve on the budget first and
  /// shed memory elsewhere before calling this (the resize itself must
  /// succeed — it holds the data being built right now).
  void ResizeResident(size_t n) {
    HWF_CHECK_MSG(!spilled(), "cannot resize a spilled vector");
    const size_t old_bytes = storage_.capacity() * sizeof(T);
    storage_.resize(n);
    const size_t new_bytes = storage_.capacity() * sizeof(T);
    if (new_bytes > old_bytes) {
      reservation_.ForceReserve(budget_, new_bytes - old_bytes);
    }
    size_ = n;
  }

  /// Adopts an already-built vector (accounted the same way).
  void AssignResident(std::vector<T>&& v) {
    HWF_CHECK_MSG(!spilled(), "cannot assign over a spilled vector");
    reservation_.Release();
    storage_ = std::move(v);
    size_ = storage_.size();
    reservation_.ForceReserve(budget_, storage_.capacity() * sizeof(T));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool spilled() const { return file_ != nullptr; }

  /// Resident-only raw access (the build paths write through these).
  T* MutableData() {
    HWF_DCHECK(!spilled());
    return storage_.data();
  }
  const T* ResidentData() const {
    HWF_DCHECK(!spilled());
    return storage_.data();
  }
  std::vector<T>& MutableVector() {
    HWF_CHECK_MSG(!spilled(), "vector access on spilled data");
    return storage_;
  }
  const std::vector<T>& Vector() const {
    HWF_CHECK_MSG(!spilled(), "vector access on spilled data");
    return storage_;
  }

  /// Element access, resident or spilled. Spilled reads go through the
  /// thread-local page cache: one pread per miss, zero locks. The spilled
  /// paths live in HWF_NOINLINE_COLD helpers so these accessors inline into
  /// the MST probe loops as a branch plus a load.
  T Get(size_t i) const {
    HWF_DCHECK(i < size_);
    if (HWF_LIKELY(file_ == nullptr)) return storage_[i];
    return SpilledGet(i);
  }

  /// Copies rows [lo, hi) into `out`. Spilled ranges bypass the cache and
  /// pread page-sized chunks directly (bulk readers shouldn't evict the
  /// probe path's cached pages).
  void ReadRange(size_t lo, size_t hi, T* out) const {
    HWF_DCHECK(lo <= hi && hi <= size_);
    if (HWF_LIKELY(file_ == nullptr)) {
      std::copy(storage_.begin() + lo, storage_.begin() + hi, out);
      return;
    }
    SpilledReadRange(lo, hi, out);
  }

  /// Lower bound over rows [lo, hi): first index whose row is not less
  /// than `value`. Resident data runs the shared branchless bisection in
  /// place; spilled data does a Get-backed binary search (page cache keeps
  /// this at ~1 I/O per probe for the short cascade-bounded windows the MST
  /// uses).
  size_t LowerBound(size_t lo, size_t hi, const T& value) const {
    HWF_DCHECK(lo <= hi && hi <= size_);
    if (HWF_LIKELY(file_ == nullptr)) {
      return lo + BranchlessLowerBound(storage_.data() + lo, hi - lo, value);
    }
    return SpilledLowerBound(lo, hi, value);
  }

  /// Hints that element `i` is about to be read. Resident data issues a
  /// hardware prefetch for its cache line; spilled data warms the page
  /// through the thread-local spill cache (one pread if absent), so a batch
  /// of probes resolves its page set in one pass instead of faulting
  /// per-element mid-computation. Safe from any thread.
  void PrefetchElement(size_t i) const {
    HWF_DCHECK(i < size_);
    if (HWF_LIKELY(file_ == nullptr)) {
      HWF_PREFETCH(storage_.data() + i);
      return;
    }
    WarmSpilledPage(i);
  }

  /// Writes the rows into a fresh region of `file`, frees the resident
  /// vector, and releases the budget reservation. No-op when already
  /// spilled or empty.
  Status Spill(SpillFile* file) {
    if (spilled() || size_ == 0) return Status::OK();
    const uint64_t region =
        file->AllocateRegion(RunWriter<T>::RegionBytesFor(size_));
    RunWriter<T> writer(file, region);
    Status status = writer.AppendBatch(storage_.data(), size_);
    if (status.ok()) status = writer.Finish();
    if (!status.ok()) return status;  // keep resident on I/O failure
    file_ = file;
    region_offset_ = region;
    storage_.clear();
    storage_.shrink_to_fit();
    reservation_.Release();
    return Status::OK();
  }

  /// Bytes currently held in RAM / on disk.
  size_t resident_bytes() const { return storage_.capacity() * sizeof(T); }
  size_t spilled_bytes() const {
    return spilled() ? RunWriter<T>::RegionBytesFor(size_) : 0;
  }

 private:
  HWF_NOINLINE_COLD T SpilledGet(size_t i) const {
    const uint64_t page = i / kRowsPerPage;
    const size_t in_page = i % kRowsPerPage;
    const std::byte* bytes = SpillPageCacheLookup(
        *file_, region_offset_ + page * kSpillPageBytes, kSpillPageBytes);
    HWF_CHECK_MSG(bytes != nullptr, "spill page read failed");
    T value;
    std::memcpy(&value, bytes + in_page * sizeof(T), sizeof(T));
    return value;
  }

  HWF_NOINLINE_COLD void SpilledReadRange(size_t lo, size_t hi, T* out) const {
    size_t i = lo;
    while (i < hi) {
      const uint64_t page = i / kRowsPerPage;
      const size_t in_page = i % kRowsPerPage;
      const size_t take = std::min(kRowsPerPage - in_page, hi - i);
      Status status = file_->ReadAt(
          region_offset_ + page * kSpillPageBytes + in_page * sizeof(T), out,
          take * sizeof(T));
      HWF_CHECK_MSG(status.ok(), status.message().c_str());
      out += take;
      i += take;
    }
  }

  HWF_NOINLINE_COLD void WarmSpilledPage(size_t i) const {
    const uint64_t page = i / kRowsPerPage;
    const std::byte* bytes = SpillPageCacheLookup(
        *file_, region_offset_ + page * kSpillPageBytes, kSpillPageBytes);
    if (bytes != nullptr) {
      HWF_PREFETCH(bytes + (i % kRowsPerPage) * sizeof(T));
    }
  }

  HWF_NOINLINE_COLD size_t SpilledLowerBound(size_t lo, size_t hi,
                                             const T& value) const {
    size_t count = hi - lo;
    size_t first = lo;
    while (count > 0) {
      const size_t step = count / 2;
      if (Get(first + step) < value) {
        first += step + 1;
        count -= step + 1;
      } else {
        count = step;
      }
    }
    return first;
  }

  std::vector<T> storage_;
  size_t size_ = 0;
  MemoryBudget* budget_ = nullptr;
  MemoryReservation reservation_;
  const SpillFile* file_ = nullptr;
  uint64_t region_offset_ = 0;
};

}  // namespace mem
}  // namespace hwf

#endif  // HWF_MEM_SPILLABLE_VECTOR_H_
