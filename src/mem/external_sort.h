#ifndef HWF_MEM_EXTERNAL_SORT_H_
#define HWF_MEM_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/stop_token.h"
#include "mem/memory_budget.h"
#include "mem/spill_file.h"
#include "mst/loser_tree.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {
namespace mem {

/// Budget-respecting sort. Three regimes:
///
///   1. No (or unlimited) budget: plain ParallelSort.
///   2. Budget grants the n-element merge buffer: in-memory ParallelSort
///      with the buffer and scratch accounted.
///   3. Budget denies the buffer and spilling is allowed: external sort —
///      the array is cut into budget-sized chunks, each chunk is sorted in
///      place (ParallelSortRange over a smaller reserved scratch) and
///      written to a spill file as a sorted run, then the runs are streamed
///      back through the same loser-tree kernel the in-memory merge uses
///      (RunReaders refill page-wise; ties break toward the lower run, i.e.
///      the lower original chunk, so the result is identical to regime 1/2
///      for the strict total orders all call sites use).
///
/// Regime 3 requires T trivially copyable (rows are written to disk raw);
/// non-trivially-copyable inputs degrade to regime 2 with ForceReserve.
///
/// `use_ovc` opts the in-memory sorts and the regime-3 run merge into the
/// offset-value-coded kernel (see ParallelSortRange); only the in-run
/// codes of each reader buffer are kept in memory — codes are recomputed
/// per refill, never spilled.
template <typename T, typename Less>
Status SortWithBudget(std::vector<T>& data, Less less, ThreadPool& pool,
                      const MemoryContext& ctx,
                      size_t run_size = kDefaultMorselSize,
                      PartitionScheme scheme = PartitionScheme::kThreeWay,
                      bool use_ovc = false) {
  const size_t n = data.size();
  MemoryBudget* budget = ctx.budget;
  // Cooperative cancellation: a stopped token aborts before the sort (and
  // the internal ParallelFor morsels stop claiming mid-sort; the caller
  // discards the partially-sorted data on the non-OK Status).
  if (Status stop = CheckStop(); !stop.ok()) return stop;
  if (!ctx.limited() || n <= run_size) {
    ParallelSort(data, less, pool, run_size, scheme, budget, use_ovc);
    return CheckStop();
  }

  // Regime 2: the whole merge buffer fits.
  MemoryReservation buffer_bytes;
  if (buffer_bytes.Reserve(budget, n * sizeof(T)).ok()) {
    std::vector<T> buffer(n);
    ParallelSortRange(data.data(), n, less, pool, run_size, scheme,
                      buffer.data(), budget, use_ovc);
    return CheckStop();
  }

  if constexpr (!std::is_trivially_copyable_v<T>) {
    // Cannot serialize rows; degrade to accounted in-memory sort.
    buffer_bytes.ForceReserve(budget, n * sizeof(T));
    std::vector<T> buffer(n);
    ParallelSortRange(data.data(), n, less, pool, run_size, scheme,
                      buffer.data(), budget, use_ovc);
    return Status::OK();
  } else {
    if (!ctx.allow_spill) {
      buffer_bytes.ForceReserve(budget, n * sizeof(T));
      std::vector<T> buffer(n);
      ParallelSortRange(data.data(), n, less, pool, run_size, scheme,
                        buffer.data(), budget, use_ovc);
      return Status::OK();
    }

    // Regime 3: external sort.
    //
    // Chunk sizing: each chunk needs an equal-sized sort scratch, so aim
    // for available/2 bytes per chunk, clamped to [run_size, n/2] elements
    // (at least two chunks — TryReserve(n bytes) just failed, so
    // available < n*sizeof(T) and the clamp is consistent).
    const size_t avail = budget->available_bytes();
    size_t chunk_elems = avail / (2 * sizeof(T));
    chunk_elems = std::max(chunk_elems, run_size);
    chunk_elems = std::min(chunk_elems, (n + 1) / 2);
    const size_t num_chunks = (n + chunk_elems - 1) / chunk_elems;

    MemoryReservation chunk_scratch_bytes;
    if (!chunk_scratch_bytes.Reserve(budget, chunk_elems * sizeof(T)).ok()) {
      // The budget is too small even for the chunk scratch; progress beats
      // failure — take the bytes and let the overshoot counter show it.
      chunk_scratch_bytes.ForceReserve(budget, chunk_elems * sizeof(T));
    }
    std::vector<T> chunk_scratch(chunk_elems);

    StatusOr<std::unique_ptr<SpillFile>> file_or = SpillFile::Create();
    if (!file_or.ok()) return file_or.status();
    std::unique_ptr<SpillFile> file = std::move(file_or).value();

    struct Run {
      uint64_t region = 0;
      uint64_t rows = 0;
    };
    std::vector<Run> runs(num_chunks);

    for (size_t c = 0; c < num_chunks; ++c) {
      if (Status stop = CheckStop(); !stop.ok()) return stop;
      const size_t lo = c * chunk_elems;
      const size_t hi = std::min(n, lo + chunk_elems);
      ParallelSortRange(data.data() + lo, hi - lo, less, pool, run_size,
                        scheme, chunk_scratch.data(), budget, use_ovc);
      runs[c].rows = hi - lo;
      runs[c].region =
          file->AllocateRegion(RunWriter<T>::RegionBytesFor(hi - lo));
      obs::ScopedPhaseTimer spill_timer(ctx.profile, obs::ProfilePhase::kSpill);
      RunWriter<T> writer(file.get(), runs[c].region);
      Status status = writer.AppendBatch(data.data() + lo, hi - lo);
      if (status.ok()) status = writer.Finish();
      if (!status.ok()) return status;
      obs::Add(obs::Counter::kMemExternalSortRuns);
    }
    chunk_scratch.clear();
    chunk_scratch.shrink_to_fit();
    chunk_scratch_bytes.Release();

    // Merge the on-disk runs back into `data`. Each reader buffers a few
    // pages; the loser tree is rebuilt whenever a source's buffer is
    // refilled (O(k) against the pages-long stretch it serves).
    const size_t k = num_chunks;
    size_t pages_per_refill = 4;
    {
      // Fit (k readers + slack) within the budget if possible.
      const size_t per_reader = pages_per_refill * kSpillPageBytes;
      MemoryReservation reader_bytes;
      if (!reader_bytes.Reserve(budget, k * per_reader).ok()) {
        pages_per_refill = 1;
        reader_bytes.ForceReserve(budget, k * kSpillPageBytes);
      }

      std::vector<RunReader<T>> readers;
      readers.reserve(k);
      for (size_t c = 0; c < k; ++c) {
        readers.emplace_back(file.get(), runs[c].region, runs[c].rows,
                             pages_per_refill);
      }
      std::vector<const T*> src(k);
      std::vector<size_t> lens(k);
      std::vector<size_t> pos(k);
      for (size_t c = 0; c < k; ++c) {
        StatusOr<size_t> got = readers[c].Refill();
        if (!got.ok()) return got.status();
        src[c] = readers[c].data();
        lens[c] = *got;
        pos[c] = 0;
      }

#if defined(HWF_HAS_OVC)
      if constexpr (kHasOvcTraits<T>) {
        if (use_ovc) {
          // Coded streaming merge: each reader buffer gets its in-run codes
          // recomputed on refill (one linear pass over data just read from
          // disk — cache-hot), and the tree re-Init on refill re-codes the
          // heads against -inf exactly as the in-memory kernel does.
          const size_t per_reader_elems =
              pages_per_refill * kSpillPageBytes / sizeof(T) + 1;
          MemoryReservation code_buf_bytes;
          code_buf_bytes.ForceReserve(budget,
                                      k * per_reader_elems * sizeof(OvcCode));
          std::vector<std::vector<OvcCode>> run_codes(k);
          std::vector<const OvcCode*> code_ptrs(k);
          for (size_t c = 0; c < k; ++c) {
            run_codes[c].resize(lens[c]);
            ComputeOvcRunCodes(src[c], lens[c], run_codes[c].data());
            code_ptrs[c] = run_codes[c].data();
          }
          OvcLoserTree<T> tree;
          tree.Init(src.data(), lens.data(), k, pos.data(), code_ptrs.data());
          size_t out = 0;
          while (out < n) {
            const size_t c = tree.TopSource();
            data[out++] = tree.TopKey();
            tree.Pop();
            if (pos[c] == lens[c] && !readers[c].exhausted()) {
              StatusOr<size_t> got = readers[c].Refill();
              if (!got.ok()) return got.status();
              if (*got > 0) {
                src[c] = readers[c].data();
                lens[c] = *got;
                pos[c] = 0;
                run_codes[c].resize(lens[c]);
                ComputeOvcRunCodes(src[c], lens[c], run_codes[c].data());
                code_ptrs[c] = run_codes[c].data();
                tree.Init(src.data(), lens.data(), k, pos.data(),
                          code_ptrs.data());
              }
            }
          }
          tree.stats().Flush();
          return Status::OK();
        }
      }
#endif

      LoserTree<T, Less> tree;
      tree.Init(src.data(), lens.data(), k, pos.data(), less);
      size_t out = 0;
      while (out < n) {
        const size_t c = tree.TopSource();
        data[out++] = tree.TopKey();
        tree.Pop();
        if (pos[c] == lens[c] && !readers[c].exhausted()) {
          StatusOr<size_t> got = readers[c].Refill();
          if (!got.ok()) return got.status();
          if (*got > 0) {
            src[c] = readers[c].data();
            lens[c] = *got;
            pos[c] = 0;
            tree.Init(src.data(), lens.data(), k, pos.data(), less);
          }
        }
      }
    }
    return Status::OK();
  }
}

}  // namespace mem
}  // namespace hwf

#endif  // HWF_MEM_EXTERNAL_SORT_H_
