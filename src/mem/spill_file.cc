#include "mem/spill_file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/counters.h"

namespace hwf {
namespace mem {

namespace {

std::atomic<uint64_t> g_next_spill_uid{1};

Status ErrnoStatus(const char* op) {
  return Status::Internal(std::string("spill file ") + op + " failed: " +
                          strerror(errno));
}

}  // namespace

std::string SpillDir() {
  if (const char* env = std::getenv("HWF_SPILL_DIR")) {
    if (env[0] != '\0') return env;
  }
  if (const char* env = std::getenv("TMPDIR")) {
    if (env[0] != '\0') return env;
  }
  return "/tmp";
}

StatusOr<std::unique_ptr<SpillFile>> SpillFile::Create(std::string dir) {
  if (dir.empty()) dir = SpillDir();
  std::string path_template = dir + "/hwf_spill_XXXXXX";
  std::vector<char> path(path_template.begin(), path_template.end());
  path.push_back('\0');
  const int fd = mkstemp(path.data());
  if (fd < 0) return ErrnoStatus("mkstemp");
  // Unlink immediately: the file lives as long as the descriptor and never
  // outlives a crash.
  (void)unlink(path.data());
  obs::Add(obs::Counter::kMemSpillFilesCreated);
  return std::unique_ptr<SpillFile>(
      new SpillFile(fd, g_next_spill_uid.fetch_add(1)));
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) (void)close(fd_);
}

Status SpillFile::WriteAt(uint64_t offset, const void* data, size_t bytes) {
  const char* src = static_cast<const char*>(data);
  size_t remaining = bytes;
  uint64_t pos = offset;
  while (remaining > 0) {
    const ssize_t n = pwrite(fd_, src, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite");
    }
    src += n;
    pos += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  if (offset + bytes > size_bytes_) size_bytes_ = offset + bytes;
  obs::Add(obs::Counter::kMemSpillBytesWritten, bytes);
  return Status::OK();
}

Status SpillFile::ReadAt(uint64_t offset, void* data, size_t bytes) const {
  char* dst = static_cast<char*>(data);
  size_t remaining = bytes;
  uint64_t pos = offset;
  while (remaining > 0) {
    const ssize_t n = pread(fd_, dst, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread");
    }
    if (n == 0) return Status::Internal("spill file pread hit EOF");
    dst += n;
    pos += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  obs::Add(obs::Counter::kMemSpillBytesRead, bytes);
  return Status::OK();
}

uint64_t SpillFile::AllocateRegion(uint64_t bytes) {
  const uint64_t offset = AlignSpillOffset(next_region_);
  next_region_ = offset + bytes;
  return offset;
}

namespace {

/// Set-associative, per-thread page cache (16 sets x 4 ways, at most 4 MiB
/// resident per probing thread, allocated lazily). The MST probe path
/// touches one page per spilled level per range; the slot index must
/// decorrelate pages that sit at the *same relative position* in different
/// regions, because a probe at row r reads the r-proportional page of every
/// evicted level. A modulo hash collapses exactly there for power-of-two
/// inputs (every region spans a multiple of kPageCacheSets pages, so
/// same-position pages share one slot); Fibonacci hashing — multiply, take
/// top bits — spreads them, and the ways absorb residual collisions without
/// ping-ponging. Ways are kept in MRU order (pointer swaps — free next to
/// the 64 KiB pread a miss costs) and the LRU way is evicted.
constexpr size_t kPageCacheSets = 16;
constexpr size_t kPageCacheWays = 4;

struct PageCacheSlot {
  uint64_t file_uid = 0;
  uint64_t offset = 0;
  size_t valid_bytes = 0;
  std::unique_ptr<std::byte[]> data;
};

struct PageCacheSet {
  std::array<PageCacheSlot, kPageCacheWays> ways;  // MRU first
};

struct PageCache {
  std::array<PageCacheSet, kPageCacheSets> sets;
};

thread_local PageCache t_page_cache;

void MoveToFront(PageCacheSet& set, size_t w) {
  for (; w > 0; --w) std::swap(set.ways[w], set.ways[w - 1]);
}

}  // namespace

const std::byte* SpillPageCacheLookup(const SpillFile& file, uint64_t offset,
                                      size_t bytes) {
  HWF_DCHECK(bytes <= kSpillPageBytes);
  const uint64_t key =
      file.uid() * 0x9e3779b97f4a7c15ull + offset / kSpillPageBytes;
  const uint64_t hash = key * 0xbf58476d1ce4e5b9ull;
  PageCacheSet& set = t_page_cache.sets[hash >> 60];
  static_assert(kPageCacheSets == 16, "set index uses the top 4 hash bits");
  for (size_t w = 0; w < kPageCacheWays; ++w) {
    PageCacheSlot& slot = set.ways[w];
    if (slot.file_uid == file.uid() && slot.offset == offset &&
        slot.valid_bytes >= bytes) {
      MoveToFront(set, w);
      return set.ways[0].data.get();
    }
  }
  MoveToFront(set, kPageCacheWays - 1);  // evict the LRU way
  PageCacheSlot& slot = set.ways[0];
  if (slot.data == nullptr) {
    slot.data = std::make_unique<std::byte[]>(kSpillPageBytes);
  }
  // Clamp to the file tail: final pages of a region may be short.
  const uint64_t file_size = file.size_bytes();
  HWF_CHECK_MSG(offset + bytes <= file_size, "spill read past end of file");
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(kSpillPageBytes, file_size - offset));
  Status status = file.ReadAt(offset, slot.data.get(), want);
  if (!status.ok()) {
    slot.file_uid = 0;
    slot.valid_bytes = 0;
    return nullptr;
  }
  slot.file_uid = file.uid();
  slot.offset = offset;
  slot.valid_bytes = want;
  return slot.data.get();
}

}  // namespace mem
}  // namespace hwf
