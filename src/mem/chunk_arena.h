#ifndef HWF_MEM_CHUNK_ARENA_H_
#define HWF_MEM_CHUNK_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "mem/memory_budget.h"

namespace hwf {
namespace mem {

/// Bump allocator for per-task merge/sort scratch.
///
/// Allocations are grouped into geometrically growing chunks reserved
/// through a MemoryBudget (ForceReserve: scratch is small, must not fail,
/// and any overshoot is visible in the forced-over-budget counter).
/// `Reset()` recycles the chunks without freeing them, so a task that runs
/// many merge rounds reuses one warm allocation. No destructors are run —
/// the arena is for trivially-destructible scratch only.
class ChunkArena {
 public:
  explicit ChunkArena(MemoryBudget* budget = nullptr,
                      size_t min_chunk_bytes = size_t{64} * 1024)
      : budget_(budget), min_chunk_bytes_(min_chunk_bytes) {}

  ChunkArena(const ChunkArena&) = delete;
  ChunkArena& operator=(const ChunkArena&) = delete;
  ~ChunkArena() = default;  // reservation_ releases via RAII

  /// Returns `bytes` of storage aligned to `alignment` (power of two,
  /// <= alignof(std::max_align_t) honored within chunks).
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    HWF_DCHECK((alignment & (alignment - 1)) == 0);
    if (bytes == 0) bytes = 1;
    uintptr_t cursor = reinterpret_cast<uintptr_t>(cursor_);
    uintptr_t aligned = (cursor + alignment - 1) & ~uintptr_t(alignment - 1);
    if (current_ == nullptr ||
        aligned + bytes > reinterpret_cast<uintptr_t>(chunk_end_)) {
      NewChunk(bytes + alignment);
      cursor = reinterpret_cast<uintptr_t>(cursor_);
      aligned = (cursor + alignment - 1) & ~uintptr_t(alignment - 1);
    }
    cursor_ = reinterpret_cast<std::byte*>(aligned + bytes);
    allocated_bytes_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Typed array of `count` default-uninitialized Ts.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena scratch must be trivially destructible");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk; capacity (and the budget reservation backing it)
  /// is kept for reuse.
  void Reset() {
    next_chunk_ = 0;
    allocated_bytes_ = 0;
    if (!chunks_.empty()) {
      current_ = chunks_[0].data.get();
      cursor_ = current_;
      chunk_end_ = current_ + chunks_[0].bytes;
      next_chunk_ = 1;
    } else {
      current_ = nullptr;
      cursor_ = nullptr;
      chunk_end_ = nullptr;
    }
  }

  /// Bytes handed out since construction/Reset (excludes alignment waste).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// Bytes reserved from the budget (total chunk capacity).
  size_t reserved_bytes() const { return reservation_.bytes(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t bytes = 0;
  };

  void NewChunk(size_t at_least) {
    // Reuse a previously built chunk if it is big enough.
    while (next_chunk_ < chunks_.size()) {
      Chunk& chunk = chunks_[next_chunk_++];
      if (chunk.bytes >= at_least) {
        current_ = chunk.data.get();
        cursor_ = current_;
        chunk_end_ = current_ + chunk.bytes;
        return;
      }
    }
    size_t size = min_chunk_bytes_;
    if (!chunks_.empty()) size = chunks_.back().bytes * 2;
    if (size < at_least) size = at_least;
    reservation_.ForceReserve(budget_, size);
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size);
    chunk.bytes = size;
    current_ = chunk.data.get();
    cursor_ = current_;
    chunk_end_ = current_ + size;
    chunks_.push_back(std::move(chunk));
    next_chunk_ = chunks_.size();
  }

  MemoryBudget* budget_;
  size_t min_chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t next_chunk_ = 0;
  std::byte* current_ = nullptr;
  std::byte* cursor_ = nullptr;
  std::byte* chunk_end_ = nullptr;
  size_t allocated_bytes_ = 0;
  MemoryReservation reservation_;
};

}  // namespace mem
}  // namespace hwf

#endif  // HWF_MEM_CHUNK_ARENA_H_
