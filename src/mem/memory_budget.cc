#include "mem/memory_budget.h"

#include "obs/counters.h"

namespace hwf {
namespace mem {

Status MemoryBudget::TryReserve(size_t bytes) {
  if (bytes == 0) return Status::OK();
  if (!limited()) {
    const size_t now = reserved_.fetch_add(bytes, std::memory_order_relaxed) +
                       bytes;
    UpdatePeak(now);
    return Status::OK();
  }
  size_t current = reserved_.load(std::memory_order_relaxed);
  while (true) {
    if (bytes > limit_ || current > limit_ - bytes) {
      obs::Add(obs::Counter::kMemBudgetDeniedReservations);
      return Status::ResourceExhausted(
          "memory budget exhausted: requested " + std::to_string(bytes) +
          " bytes with " + std::to_string(current) + "/" +
          std::to_string(limit_) + " reserved");
    }
    if (reserved_.compare_exchange_weak(current, current + bytes,
                                        std::memory_order_relaxed)) {
      UpdatePeak(current + bytes);
      return Status::OK();
    }
  }
}

void MemoryBudget::ForceReserve(size_t bytes) {
  if (bytes == 0) return;
  const size_t now =
      reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limited() && now > limit_) {
    const size_t before = now - bytes;
    const size_t over_now = now - limit_;
    const size_t over_before = before > limit_ ? before - limit_ : 0;
    obs::Add(obs::Counter::kMemForcedOverBudgetBytes, over_now - over_before);
  }
  UpdatePeak(now);
}

void MemoryBudget::Release(size_t bytes) {
  if (bytes == 0) return;
  const size_t before = reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  HWF_DCHECK(before >= bytes);
  (void)before;
}

void MemoryBudget::UpdatePeak(size_t reserved_now) {
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (reserved_now > peak &&
         !peak_.compare_exchange_weak(peak, reserved_now,
                                      std::memory_order_relaxed)) {
  }
}

bool ParseMemorySize(std::string_view text, size_t* bytes) {
  if (text.empty()) return false;
  size_t value = 0;
  size_t i = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') break;
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (std::numeric_limits<size_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  if (i == 0) return false;  // No digits.
  size_t shift = 0;
  if (i < text.size()) {
    switch (text[i]) {
      case 'k': case 'K': shift = 10; ++i; break;
      case 'm': case 'M': shift = 20; ++i; break;
      case 'g': case 'G': shift = 30; ++i; break;
      default: return false;
    }
    if (i < text.size() && (text[i] == 'b' || text[i] == 'B')) ++i;
  }
  if (i != text.size()) return false;
  if (shift > 0 && value > (std::numeric_limits<size_t>::max() >> shift)) {
    return false;
  }
  *bytes = value << shift;
  return true;
}

}  // namespace mem
}  // namespace hwf
