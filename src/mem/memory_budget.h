#ifndef HWF_MEM_MEMORY_BUDGET_H_
#define HWF_MEM_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

#include "common/macros.h"
#include "common/status.h"

namespace hwf {

namespace obs {
class ExecutionProfile;
}  // namespace obs

namespace mem {

/// Tracks memory reservations against a byte limit.
///
/// The budget is a bookkeeping device, not an allocator: callers reserve
/// bytes *before* allocating and release them after freeing, so `reserved()`
/// is the sum of all live, accounted allocations. Two limits apply:
///
///   - the hard limit (`limit_bytes`): TryReserve fails once granting the
///     request would exceed it. 0 means unlimited.
///   - the soft limit (a fraction of the hard limit, default 7/8): operators
///     that *can* shed memory (spill, evict) treat crossing it as the signal
///     to start doing so, keeping headroom for the small unsheddable
///     allocations that use ForceReserve.
///
/// All methods are thread-safe; TryReserve uses a CAS loop so concurrent
/// reservations never over-commit the hard limit.
class MemoryBudget {
 public:
  static constexpr size_t kUnlimited = 0;

  explicit MemoryBudget(size_t limit_bytes = kUnlimited,
                        double soft_fraction = 0.875)
      : limit_(limit_bytes),
        soft_limit_(limit_bytes == kUnlimited
                        ? kUnlimited
                        : static_cast<size_t>(
                              static_cast<double>(limit_bytes) *
                              soft_fraction)) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Hard limit in bytes; 0 = unlimited.
  size_t limit_bytes() const { return limit_; }
  size_t soft_limit_bytes() const { return soft_limit_; }
  bool limited() const { return limit_ != kUnlimited; }

  /// Reserves `bytes` if doing so keeps `reserved() <= limit_bytes()`.
  /// Returns ResourceExhausted (and bumps the denied-reservation counter)
  /// otherwise. Always succeeds on an unlimited budget.
  Status TryReserve(size_t bytes);

  /// Reserves `bytes` unconditionally. Used for allocations that cannot be
  /// shed (the output column, tiny per-task scratch); bytes reserved past
  /// the hard limit are recorded in the forced-over-budget counter so the
  /// overshoot is visible rather than silent.
  void ForceReserve(size_t bytes);

  /// Returns previously reserved bytes to the budget.
  void Release(size_t bytes);

  size_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }

  /// High-water mark of reserved_bytes() over the budget's lifetime.
  size_t peak_reserved_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Bytes a TryReserve could still grant; SIZE_MAX when unlimited.
  size_t available_bytes() const {
    if (!limited()) return std::numeric_limits<size_t>::max();
    const size_t reserved = reserved_bytes();
    return reserved >= limit_ ? 0 : limit_ - reserved;
  }

  /// True once reservations crossed the soft limit — the cue for sheddable
  /// consumers to start evicting/spilling.
  bool over_soft_limit() const {
    return limited() && reserved_bytes() > soft_limit_;
  }

 private:
  void UpdatePeak(size_t reserved_now);

  const size_t limit_;
  const size_t soft_limit_;
  std::atomic<size_t> reserved_{0};
  std::atomic<size_t> peak_{0};
};

/// RAII handle for a budget reservation: releases on destruction. Movable,
/// so it can live inside spillable containers and be returned from helpers.
class MemoryReservation {
 public:
  MemoryReservation() = default;

  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  ~MemoryReservation() { Release(); }

  /// Tries to add `bytes` to this reservation. `budget` may be null
  /// (unlimited; the call trivially succeeds and tracks nothing).
  Status Reserve(MemoryBudget* budget, size_t bytes) {
    if (budget == nullptr || bytes == 0) return Status::OK();
    HWF_DCHECK(budget_ == nullptr || budget_ == budget);
    Status status = budget->TryReserve(bytes);
    if (status.ok()) {
      budget_ = budget;
      bytes_ += bytes;
    }
    return status;
  }

  /// Adds `bytes` unconditionally (see MemoryBudget::ForceReserve).
  void ForceReserve(MemoryBudget* budget, size_t bytes) {
    if (budget == nullptr || bytes == 0) return;
    HWF_DCHECK(budget_ == nullptr || budget_ == budget);
    budget->ForceReserve(bytes);
    budget_ = budget;
    bytes_ += bytes;
  }

  /// Returns everything held to the budget.
  void Release() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    bytes_ = 0;
    budget_ = nullptr;
  }

  /// Returns part of the reservation (e.g. after shrinking a container).
  void ReleasePartial(size_t bytes) {
    if (budget_ == nullptr || bytes == 0) return;
    HWF_DCHECK(bytes <= bytes_);
    const size_t give_back = bytes < bytes_ ? bytes : bytes_;
    budget_->Release(give_back);
    bytes_ -= give_back;
  }

  size_t bytes() const { return bytes_; }
  MemoryBudget* budget() const { return budget_; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

/// Everything a memory-aware operator needs, passed by value down the
/// stack: the budget to account against (null = unlimited), whether the
/// operator may shed memory to disk when the budget denies a reservation,
/// and where to charge spill I/O time.
struct MemoryContext {
  MemoryBudget* budget = nullptr;
  bool allow_spill = false;
  obs::ExecutionProfile* profile = nullptr;

  bool limited() const { return budget != nullptr && budget->limited(); }
  bool can_spill() const { return allow_spill && limited(); }
};

/// Parses a human-readable byte count: a non-negative integer with an
/// optional binary scale suffix K / M / G (case-insensitive, optional
/// trailing B, e.g. "256M", "1g", "65536", "512KB"). Returns false on
/// malformed input or overflow; `*bytes` is untouched then.
bool ParseMemorySize(std::string_view text, size_t* bytes);

}  // namespace mem
}  // namespace hwf

#endif  // HWF_MEM_MEMORY_BUDGET_H_
