#ifndef HWF_WINDOW_SPEC_H_
#define HWF_WINDOW_SPEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hwf {

/// All window and aggregate functions from SQL:2011 supported in combination
/// with arbitrary window frames (the paper's proposal, §2.4), plus the plain
/// distributive aggregates for completeness.
enum class WindowFunctionKind {
  // Distributive / algebraic aggregates (segment tree, Leis et al. [27]).
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  // Framed DISTINCT aggregates (§4.2, §4.3).
  kCountDistinct,
  kSumDistinct,
  kAvgDistinct,
  kMinDistinct,
  kMaxDistinct,
  // Framed rank functions (§4.4).
  kRank,
  kDenseRank,  // 3-d range tree, O(n log² n) (§4.4).
  kRowNumber,
  kPercentRank,
  kCumeDist,
  kNtile,
  // Framed percentiles (§4.5).
  kPercentileDisc,
  kPercentileCont,
  kMedian,
  // Framed value functions (§4.5).
  kFirstValue,
  kLastValue,
  kNthValue,
  // Framed LEAD / LAG (§4.6).
  kLead,
  kLag,
  // Windowed MODE (Wesley & Xu [38]; outside the merge sort tree's
  // coverage — evaluated by the naive and incremental engines).
  kMode,
};

const char* WindowFunctionKindName(WindowFunctionKind kind);

/// One ORDER BY key: a column with direction and NULL placement.
/// Defaults follow PostgreSQL: ascending, NULLS LAST.
struct SortKey {
  size_t column = 0;
  bool ascending = true;
  bool nulls_first = false;

  friend bool operator==(const SortKey&, const SortKey&) = default;
};

enum class FrameMode {
  kRows,    // offsets count physical rows
  kRange,   // offsets are value deltas on a single numeric ORDER BY key
  kGroups,  // offsets count peer groups
};

enum class FrameBoundKind {
  kUnboundedPreceding,
  kPreceding,
  kCurrentRow,
  kFollowing,
  kUnboundedFollowing,
};

/// One frame boundary. Offsets may be constants or per-row expressions
/// (a column evaluated at the current row), which is what enables the
/// paper's non-monotonic frames (§2.2, §6.5).
struct FrameBound {
  FrameBoundKind kind = FrameBoundKind::kUnboundedPreceding;
  /// Constant offset; used when offset_column is empty.
  int64_t offset = 0;
  /// Per-row offset: a numeric column; the value at the current row is the
  /// offset. Negative values are clamped to 0.
  std::optional<size_t> offset_column;

  static FrameBound UnboundedPreceding() {
    return {FrameBoundKind::kUnboundedPreceding, 0, std::nullopt};
  }
  static FrameBound Preceding(int64_t offset) {
    return {FrameBoundKind::kPreceding, offset, std::nullopt};
  }
  static FrameBound PrecedingColumn(size_t column) {
    return {FrameBoundKind::kPreceding, 0, column};
  }
  static FrameBound CurrentRow() {
    return {FrameBoundKind::kCurrentRow, 0, std::nullopt};
  }
  static FrameBound Following(int64_t offset) {
    return {FrameBoundKind::kFollowing, offset, std::nullopt};
  }
  static FrameBound FollowingColumn(size_t column) {
    return {FrameBoundKind::kFollowing, 0, column};
  }
  static FrameBound UnboundedFollowing() {
    return {FrameBoundKind::kUnboundedFollowing, 0, std::nullopt};
  }

  friend bool operator==(const FrameBound&, const FrameBound&) = default;
};

/// SQL:2011 frame exclusion clauses (§4.7). An exclusion can punch up to
/// two holes into the frame, splitting it into at most three ranges.
enum class FrameExclusion {
  kNoOthers,    // EXCLUDE NO OTHERS (default)
  kCurrentRow,  // EXCLUDE CURRENT ROW
  kGroup,       // EXCLUDE GROUP: current row and its ORDER BY peers
  kTies,        // EXCLUDE TIES: peers, but the current row itself stays
};

struct FrameSpec {
  FrameMode mode = FrameMode::kRows;
  FrameBound begin = FrameBound::UnboundedPreceding();
  FrameBound end = FrameBound::CurrentRow();
  FrameExclusion exclusion = FrameExclusion::kNoOthers;

  friend bool operator==(const FrameSpec&, const FrameSpec&) = default;
};

/// The OVER clause: partitioning, frame ordering, and the frame itself.
///
/// Structural equality (member-wise, including the frame) is THE definition
/// of "same spec" across the system: the planner groups select items by it,
/// and the executor deduplicates work with it. Specs that differ only in
/// PARTITION BY column order are *not* equal — they are distinct specs whose
/// sorts the shared-sort optimizer (window/shared_sort.h) can still share.
struct WindowSpec {
  std::vector<size_t> partition_by;
  std::vector<SortKey> order_by;
  FrameSpec frame;

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

/// Hash matching WindowSpec's structural equality, for unordered containers
/// keyed by spec (the planner's spec-grouping map).
struct WindowSpecHash {
  size_t operator()(const WindowSpec& spec) const;
};

/// One window function call. Beyond standard SQL, this carries the paper's
/// extensions (§2.4): a function-level ORDER BY independent of the frame
/// order, DISTINCT variants, and FILTER support for every function.
struct WindowFunctionCall {
  WindowFunctionKind kind = WindowFunctionKind::kCountStar;

  /// The argument column (the aggregated / selected expression). Unused for
  /// kCountStar, kRank, kDenseRank, kRowNumber, kPercentRank, kCumeDist and
  /// kNtile.
  std::optional<size_t> argument;

  /// Function-level ORDER BY (e.g. rank(ORDER BY tps DESC)). When empty,
  /// order-sensitive functions fall back to the window's ORDER BY (the
  /// standard SQL semantics), and percentiles order by the argument.
  std::vector<SortKey> order_by;

  /// FILTER (WHERE ...) clause: an int64 column; rows with NULL or zero are
  /// excluded from the function's input (§4.7).
  std::optional<size_t> filter;

  /// IGNORE NULLS for value functions (§4.5).
  bool ignore_nulls = false;

  /// Percentile fraction in [0, 1] for kPercentileDisc / kPercentileCont.
  double fraction = 0.5;

  /// Multi-purpose integer parameter: LEAD/LAG offset (default 1),
  /// NTH_VALUE's n (1-based), NTILE's bucket count.
  int64_t param = 1;
};

/// Validates a window specification against a table. Returns the first
/// problem found.
Status ValidateWindowSpec(const Table& table, const WindowSpec& spec);

/// Validates a function call against a table and spec.
Status ValidateWindowCall(const Table& table, const WindowSpec& spec,
                          const WindowFunctionCall& call);

}  // namespace hwf

#endif  // HWF_WINDOW_SPEC_H_
