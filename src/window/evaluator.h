#ifndef HWF_WINDOW_EVALUATOR_H_
#define HWF_WINDOW_EVALUATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "mst/remap.h"
#include "mst/tree_cache.h"
#include "parallel/thread_pool.h"
#include "storage/table.h"
#include "window/executor.h"
#include "window/frame.h"
#include "window/spec.h"

namespace hwf {

/// Internal: streaming-ingest census of one partition (set by the executor
/// only when the table snapshot carries appended rows AND this partition
/// holds a mix of base and delta rows). Evaluators that support the merged
/// two-tree probe path (percentile/selection) use `main_prefix` to look up
/// the pre-append base subset's cached tree and consult it alongside a
/// small freshly-built delta side-tree instead of rebuilding over the full
/// partition; all other families ignore it and rebuild (their new tree is
/// then cached under the partition's content key, so only the first query
/// after an append pays).
struct PartitionDelta {
  size_t base_rows = 0;            // Table ids >= this are appended rows.
  size_t delta_in_partition = 0;   // How many of this partition's rows.
  std::string main_prefix;         // Cache prefix of the base-only subset.
};

/// Internal: one partition as seen by a window function evaluator.
///
/// Positions are 0..n within the partition's sort order; `rows[i]` maps a
/// position back to the input table row. Evaluators write their result for
/// position i into out row `rows[i]`.
struct PartitionView {
  const Table* table = nullptr;
  const WindowSpec* spec = nullptr;
  std::span<const size_t> rows;
  std::span<const FrameRanges> frames;
  const WindowExecutorOptions* options = nullptr;
  ThreadPool* pool = nullptr;

  /// Cross-query artifact cache; null when caching is disabled. When set,
  /// `cache_prefix` identifies the (table version, sort spec, partition row
  /// range) and evaluators append their own build parameters to form exact
  /// keys. Cached artifacts must be self-contained (no per-query budget
  /// reservations) and are shared across threads, so probes must be const.
  mst::TreeCache* cache = nullptr;
  std::string cache_prefix;

  /// Non-null only for mixed base+delta partitions in delta mode.
  const PartitionDelta* delta = nullptr;

  size_t size() const { return rows.size(); }
  const Column& col(size_t index) const { return table->column(index); }
};

// -- Shared evaluator helpers (window/executor.cc) --------------------------

/// Three-way comparison of two table rows under a sequence of sort keys
/// (direction + NULL placement per key). Returns <0, 0, >0.
int CompareRowsBy(const Table& table, size_t row_a, size_t row_b,
                  std::span<const SortKey> keys);

/// The function-level ordering of a call, falling back to the window's
/// ORDER BY per the standard's semantics, or to ordering by the argument
/// for percentiles.
std::vector<SortKey> EffectiveOrder(const WindowSpec& spec,
                                    const WindowFunctionCall& call);

/// Builds the inclusion remap for a call: drops rows failing the FILTER
/// clause and, when `drop_null_args` is set, rows whose argument is NULL.
IndexRemap BuildCallRemap(const PartitionView& view,
                          const WindowFunctionCall& call, bool drop_null_args);

/// Maps frame ranges from original partition positions to filtered
/// positions. Returns the number of ranges written to `out` (≤ 3); empty
/// mapped ranges are dropped.
size_t MapRangesToFiltered(const FrameRanges& frames, const IndexRemap& remap,
                           RowRange* out);

/// Serializes every call property that determines a build artifact (the
/// effective ORDER BY, FILTER, argument/NULL handling, and the tree build
/// parameters) into a cache-key fragment. Evaluators append a site tag and
/// the index width to form the full key under `view.cache_prefix`.
std::string CallCacheKey(const PartitionView& view,
                         const WindowFunctionCall& call, bool drop_null_args);

// -- Per-family evaluators (window/functions/*.cc), merge sort tree engine --

Status EvalDistinctAggregate(const PartitionView& view,
                             const WindowFunctionCall& call, Column* out);
Status EvalRankFunction(const PartitionView& view,
                        const WindowFunctionCall& call, Column* out);
Status EvalDenseRank(const PartitionView& view, const WindowFunctionCall& call,
                     Column* out);
Status EvalPercentile(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out);
Status EvalValueFunction(const PartitionView& view,
                         const WindowFunctionCall& call, Column* out);
Status EvalLeadLag(const PartitionView& view, const WindowFunctionCall& call,
                   Column* out);
Status EvalDistributive(const PartitionView& view,
                        const WindowFunctionCall& call, Column* out);

// -- Competitor engines (src/baselines/) ------------------------------------

Status EvalNaive(const PartitionView& view, const WindowFunctionCall& call,
                 Column* out);
Status EvalIncremental(const PartitionView& view,
                       const WindowFunctionCall& call, Column* out);
Status EvalOrderStatisticTree(const PartitionView& view,
                              const WindowFunctionCall& call, Column* out);

}  // namespace hwf

#endif  // HWF_WINDOW_EVALUATOR_H_
