#include "window/spec.h"

namespace hwf {

const char* WindowFunctionKindName(WindowFunctionKind kind) {
  switch (kind) {
    case WindowFunctionKind::kCountStar:
      return "count(*)";
    case WindowFunctionKind::kCount:
      return "count";
    case WindowFunctionKind::kSum:
      return "sum";
    case WindowFunctionKind::kMin:
      return "min";
    case WindowFunctionKind::kMax:
      return "max";
    case WindowFunctionKind::kAvg:
      return "avg";
    case WindowFunctionKind::kCountDistinct:
      return "count(distinct)";
    case WindowFunctionKind::kSumDistinct:
      return "sum(distinct)";
    case WindowFunctionKind::kAvgDistinct:
      return "avg(distinct)";
    case WindowFunctionKind::kMinDistinct:
      return "min(distinct)";
    case WindowFunctionKind::kMaxDistinct:
      return "max(distinct)";
    case WindowFunctionKind::kRank:
      return "rank";
    case WindowFunctionKind::kDenseRank:
      return "dense_rank";
    case WindowFunctionKind::kRowNumber:
      return "row_number";
    case WindowFunctionKind::kPercentRank:
      return "percent_rank";
    case WindowFunctionKind::kCumeDist:
      return "cume_dist";
    case WindowFunctionKind::kNtile:
      return "ntile";
    case WindowFunctionKind::kPercentileDisc:
      return "percentile_disc";
    case WindowFunctionKind::kPercentileCont:
      return "percentile_cont";
    case WindowFunctionKind::kMedian:
      return "median";
    case WindowFunctionKind::kFirstValue:
      return "first_value";
    case WindowFunctionKind::kLastValue:
      return "last_value";
    case WindowFunctionKind::kNthValue:
      return "nth_value";
    case WindowFunctionKind::kLead:
      return "lead";
    case WindowFunctionKind::kLag:
      return "lag";
    case WindowFunctionKind::kMode:
      return "mode";
  }
  return "unknown";
}

size_t WindowSpecHash::operator()(const WindowSpec& spec) const {
  // FNV-1a over the canonical field sequence; must agree with operator==
  // (every compared field feeds the hash).
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(spec.partition_by.size());
  for (size_t column : spec.partition_by) mix(column);
  mix(spec.order_by.size());
  for (const SortKey& key : spec.order_by) {
    mix(key.column);
    mix(static_cast<uint64_t>(key.ascending) << 1 |
        static_cast<uint64_t>(key.nulls_first));
  }
  auto mix_bound = [&](const FrameBound& bound) {
    mix(static_cast<uint64_t>(bound.kind));
    mix(static_cast<uint64_t>(bound.offset));
    mix(bound.offset_column.has_value() ? *bound.offset_column + 1 : 0);
  };
  mix(static_cast<uint64_t>(spec.frame.mode));
  mix_bound(spec.frame.begin);
  mix_bound(spec.frame.end);
  mix(static_cast<uint64_t>(spec.frame.exclusion));
  return static_cast<size_t>(h);
}

namespace {

bool NeedsArgument(WindowFunctionKind kind) {
  switch (kind) {
    case WindowFunctionKind::kCountStar:
    case WindowFunctionKind::kRank:
    case WindowFunctionKind::kDenseRank:
    case WindowFunctionKind::kRowNumber:
    case WindowFunctionKind::kPercentRank:
    case WindowFunctionKind::kCumeDist:
    case WindowFunctionKind::kNtile:
      return false;
    default:
      return true;
  }
}

bool NeedsNumericArgument(WindowFunctionKind kind) {
  switch (kind) {
    case WindowFunctionKind::kSum:
    case WindowFunctionKind::kMin:
    case WindowFunctionKind::kMax:
    case WindowFunctionKind::kAvg:
    case WindowFunctionKind::kSumDistinct:
    case WindowFunctionKind::kAvgDistinct:
    case WindowFunctionKind::kMinDistinct:
    case WindowFunctionKind::kMaxDistinct:
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont:
    case WindowFunctionKind::kMedian:
      return true;
    default:
      return false;
  }
}

Status CheckColumn(const Table& table, size_t column, const char* what) {
  if (column >= table.num_columns()) {
    return Status::InvalidArgument(std::string(what) +
                                   " references a column out of range");
  }
  return Status::OK();
}

Status CheckSortKeys(const Table& table, const std::vector<SortKey>& keys,
                     const char* what) {
  for (const SortKey& key : keys) {
    Status status = CheckColumn(table, key.column, what);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status CheckBound(const Table& table, const FrameBound& bound,
                  FrameMode mode) {
  if (bound.offset_column.has_value()) {
    Status status = CheckColumn(table, *bound.offset_column, "frame bound");
    if (!status.ok()) return status;
    const DataType type = table.column(*bound.offset_column).type();
    if (type == DataType::kString) {
      return Status::TypeMismatch("frame bound offset column must be numeric");
    }
  } else if (bound.kind == FrameBoundKind::kPreceding ||
             bound.kind == FrameBoundKind::kFollowing) {
    if (bound.offset < 0) {
      return Status::InvalidArgument("frame offsets must be non-negative");
    }
  }
  (void)mode;
  return Status::OK();
}

}  // namespace

Status ValidateWindowSpec(const Table& table, const WindowSpec& spec) {
  for (size_t column : spec.partition_by) {
    Status status = CheckColumn(table, column, "PARTITION BY");
    if (!status.ok()) return status;
  }
  Status status = CheckSortKeys(table, spec.order_by, "ORDER BY");
  if (!status.ok()) return status;

  const FrameSpec& frame = spec.frame;
  status = CheckBound(table, frame.begin, frame.mode);
  if (!status.ok()) return status;
  status = CheckBound(table, frame.end, frame.mode);
  if (!status.ok()) return status;
  if (frame.begin.kind == FrameBoundKind::kUnboundedFollowing) {
    return Status::InvalidArgument(
        "frame start cannot be UNBOUNDED FOLLOWING");
  }
  if (frame.end.kind == FrameBoundKind::kUnboundedPreceding) {
    return Status::InvalidArgument("frame end cannot be UNBOUNDED PRECEDING");
  }
  if (frame.mode == FrameMode::kRange) {
    const bool needs_key =
        frame.begin.kind == FrameBoundKind::kPreceding ||
        frame.begin.kind == FrameBoundKind::kFollowing ||
        frame.end.kind == FrameBoundKind::kPreceding ||
        frame.end.kind == FrameBoundKind::kFollowing;
    if (needs_key) {
      if (spec.order_by.size() != 1) {
        return Status::InvalidArgument(
            "RANGE with offsets requires exactly one ORDER BY key");
      }
      if (table.column(spec.order_by[0].column).type() == DataType::kString) {
        return Status::TypeMismatch(
            "RANGE with offsets requires a numeric ORDER BY key");
      }
    }
  }
  if ((frame.mode == FrameMode::kGroups || frame.mode == FrameMode::kRange ||
       frame.exclusion == FrameExclusion::kGroup ||
       frame.exclusion == FrameExclusion::kTies) &&
      spec.order_by.empty()) {
    // Peer groups are defined by the ORDER BY; without one, the whole
    // partition is a single peer group, which is well-defined, so this is
    // allowed — no error.
  }
  return Status::OK();
}

Status ValidateWindowCall(const Table& table, const WindowSpec& spec,
                          const WindowFunctionCall& call) {
  if (NeedsArgument(call.kind)) {
    if (!call.argument.has_value()) {
      return Status::InvalidArgument(
          std::string(WindowFunctionKindName(call.kind)) +
          " requires an argument column");
    }
    Status status = CheckColumn(table, *call.argument, "argument");
    if (!status.ok()) return status;
    if (NeedsNumericArgument(call.kind) &&
        table.column(*call.argument).type() == DataType::kString) {
      return Status::TypeMismatch(
          std::string(WindowFunctionKindName(call.kind)) +
          " requires a numeric argument");
    }
  }
  Status status = CheckSortKeys(table, call.order_by, "function ORDER BY");
  if (!status.ok()) return status;
  if (call.filter.has_value()) {
    status = CheckColumn(table, *call.filter, "FILTER");
    if (!status.ok()) return status;
    if (table.column(*call.filter).type() != DataType::kInt64) {
      return Status::TypeMismatch("FILTER column must be int64 (boolean)");
    }
  }
  switch (call.kind) {
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont:
      if (call.fraction < 0.0 || call.fraction > 1.0) {
        return Status::OutOfRange("percentile fraction must be in [0, 1]");
      }
      break;
    case WindowFunctionKind::kNtile:
      if (call.param < 1) {
        return Status::OutOfRange("ntile bucket count must be >= 1");
      }
      break;
    case WindowFunctionKind::kNthValue:
      if (call.param < 1) {
        return Status::OutOfRange("nth_value position must be >= 1");
      }
      break;
    case WindowFunctionKind::kLead:
    case WindowFunctionKind::kLag:
      if (call.param < 0) {
        return Status::OutOfRange("lead/lag offset must be >= 0");
      }
      break;
    case WindowFunctionKind::kDenseRank:
      if (spec.frame.exclusion != FrameExclusion::kNoOthers) {
        return Status::NotImplemented(
            "dense_rank with frame exclusion is not supported (the "
            "distinctness correction across exclusion holes is not "
            "implemented for the 3-d range tree)");
      }
      break;
    default:
      break;
  }
  // Order-sensitive functions need *some* ordering: the function-level one
  // or the window's.
  switch (call.kind) {
    case WindowFunctionKind::kRank:
    case WindowFunctionKind::kDenseRank:
    case WindowFunctionKind::kRowNumber:
    case WindowFunctionKind::kPercentRank:
    case WindowFunctionKind::kCumeDist:
    case WindowFunctionKind::kNtile:
    case WindowFunctionKind::kFirstValue:
    case WindowFunctionKind::kLastValue:
    case WindowFunctionKind::kNthValue:
    case WindowFunctionKind::kLead:
    case WindowFunctionKind::kLag:
      if (call.order_by.empty() && spec.order_by.empty()) {
        return Status::InvalidArgument(
            std::string(WindowFunctionKindName(call.kind)) +
            " requires an ORDER BY (function-level or in the OVER clause)");
      }
      break;
    default:
      break;
  }
  return Status::OK();
}

}  // namespace hwf
