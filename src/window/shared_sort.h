#ifndef HWF_WINDOW_SHARED_SORT_H_
#define HWF_WINDOW_SHARED_SORT_H_

#include <span>
#include <string>
#include <vector>

#include "window/spec.h"

namespace hwf {

/// Ordering-equivalence analysis for multi-window-spec queries (Cao et al.,
/// "Optimization of Analytic Window Functions"; MariaDB's spec-compat
/// sorting in sql_window.cc is the production analogue).
///
/// A spec's *ordering requirement* is its PARTITION BY columns as a set plus
/// its ORDER BY key sequence (column, direction, NULL placement). Spec B is
/// covered by spec A's sort output when the partition sets are equal and
/// B's ORDER BY is a prefix of A's — including the two degenerate ends:
///   - exact: identical ORDER BY sequences (B differs only in frame or in
///     PARTITION BY column order); A's permutation serves B verbatim.
///   - strictly finer: A orders by extra trailing keys; B's canonical
///     permutation is recovered from A's by re-sorting the row ids inside
///     each maximal tie group of B's (shorter) key prefix — an O(n)
///     boundary sweep plus integer-only tie sorts, never a full re-sort.
///
/// Partition-order permutations are shareable because the executor writes
/// every result at the row's original id: the global arrangement of
/// partitions is irrelevant, and the intra-partition order — the part that
/// carries semantics — depends only on (ORDER BY, row id), not on the
/// declared PARTITION BY sequence.

/// The sharing plan over a set of distinct window specs: which specs pay
/// for a sort (producers) and which reuse another spec's output.
struct SharedSortPlan {
  enum class Reuse {
    kProducer,  // pays its own sort
    kExact,     // identical ordering requirement; artifact reused verbatim
    kPrefix,    // strict ORDER BY prefix; derived by tie-group re-sort
  };

  /// Per input spec: the index of the spec whose sort artifact serves it
  /// (== the spec's own index for producers).
  std::vector<size_t> producer;
  /// Per input spec: how its ordering requirement is satisfied.
  std::vector<Reuse> reuse;
  /// Execution sequence: each producer (ascending input order) immediately
  /// followed by the specs it covers. Producers always precede consumers.
  std::vector<size_t> sequence;
  size_t num_producers = 0;

  bool IsProducer(size_t index) const { return producer[index] == index; }

  /// One line per sort chain, e.g.
  ///   "sort#0 <- spec#0 [ps:1|ob:2a]; covers spec#1 (exact), spec#2 (prefix)"
  std::string Describe(std::span<const WindowSpec* const> specs) const;
};

/// True when `producer`'s sort output satisfies `consumer`'s ordering
/// requirement: equal PARTITION BY column sets and consumer.order_by is a
/// (possibly exact, possibly empty) prefix of producer.order_by.
bool OrderingCovers(const WindowSpec& producer, const WindowSpec& consumer);

/// Canonical ordering key: the sorted, deduplicated PARTITION BY column set
/// plus the ORDER BY sequence — "ps:<cols>|ob:<col><a|d><f|l>...". Two specs
/// with equal keys produce bit-identical per-partition row sequences, so
/// per-partition artifacts (merge sort trees, rank codes) cached under this
/// key are shared across frames and PARTITION BY permutations.
std::string OrderingKey(const WindowSpec& spec);

/// Sequences the specs into a minimal chain of sorts: specs are visited in
/// descending ORDER BY length (ties by input index, so the result is
/// deterministic), each either latching onto an already-chosen producer
/// that covers it or becoming a producer itself. Longer orderings are
/// considered first, so a spec whose ordering is strictly finer than
/// another's always ends up producing for it.
SharedSortPlan PlanSharedSorts(std::span<const WindowSpec* const> specs);

}  // namespace hwf

#endif  // HWF_WINDOW_SHARED_SORT_H_
