#include "window/shared_sort.h"

#include <algorithm>
#include <numeric>

namespace hwf {

namespace {

std::vector<size_t> PartitionSet(const WindowSpec& spec) {
  std::vector<size_t> set = spec.partition_by;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

}  // namespace

bool OrderingCovers(const WindowSpec& producer, const WindowSpec& consumer) {
  if (PartitionSet(producer) != PartitionSet(consumer)) return false;
  if (consumer.order_by.size() > producer.order_by.size()) return false;
  return std::equal(consumer.order_by.begin(), consumer.order_by.end(),
                    producer.order_by.begin());
}

std::string OrderingKey(const WindowSpec& spec) {
  std::string key = "ps";
  for (size_t column : PartitionSet(spec)) {
    key += ':';
    key += std::to_string(column);
  }
  key += "|ob";
  for (const SortKey& sort_key : spec.order_by) {
    key += ':';
    key += std::to_string(sort_key.column);
    key += sort_key.ascending ? 'a' : 'd';
    key += sort_key.nulls_first ? 'f' : 'l';
  }
  return key;
}

SharedSortPlan PlanSharedSorts(std::span<const WindowSpec* const> specs) {
  const size_t n = specs.size();
  SharedSortPlan plan;
  plan.producer.resize(n);
  std::iota(plan.producer.begin(), plan.producer.end(), size_t{0});
  plan.reuse.assign(n, SharedSortPlan::Reuse::kProducer);

  // Visit in descending ORDER BY length so every potential producer is
  // examined before the specs its finer ordering could cover; stable on the
  // input index for determinism.
  std::vector<size_t> by_length(n);
  std::iota(by_length.begin(), by_length.end(), size_t{0});
  std::stable_sort(by_length.begin(), by_length.end(),
                   [&](size_t a, size_t b) {
                     return specs[a]->order_by.size() >
                            specs[b]->order_by.size();
                   });

  std::vector<size_t> producers;
  for (size_t index : by_length) {
    bool covered = false;
    for (size_t candidate : producers) {
      if (OrderingCovers(*specs[candidate], *specs[index])) {
        plan.producer[index] = candidate;
        plan.reuse[index] =
            specs[index]->order_by.size() == specs[candidate]->order_by.size()
                ? SharedSortPlan::Reuse::kExact
                : SharedSortPlan::Reuse::kPrefix;
        covered = true;
        break;
      }
    }
    if (!covered) producers.push_back(index);
  }
  plan.num_producers = producers.size();

  std::sort(producers.begin(), producers.end());
  plan.sequence.reserve(n);
  for (size_t p : producers) {
    plan.sequence.push_back(p);
    for (size_t i = 0; i < n; ++i) {
      if (i != p && plan.producer[i] == p) plan.sequence.push_back(i);
    }
  }
  return plan;
}

std::string SharedSortPlan::Describe(
    std::span<const WindowSpec* const> specs) const {
  std::string out;
  size_t sort_index = 0;
  for (size_t p = 0; p < producer.size(); ++p) {
    if (!IsProducer(p)) continue;
    if (!out.empty()) out += '\n';
    out += "sort#" + std::to_string(sort_index++) + " <- spec#" +
           std::to_string(p) + " [" + OrderingKey(*specs[p]) + "]";
    std::string covers;
    for (size_t i = 0; i < producer.size(); ++i) {
      if (i == p || producer[i] != p) continue;
      if (!covers.empty()) covers += ", ";
      covers += "spec#" + std::to_string(i) +
                (reuse[i] == Reuse::kExact ? " (exact)" : " (prefix)");
    }
    if (!covers.empty()) out += "; covers " + covers;
  }
  return out;
}

}  // namespace hwf
