#ifndef HWF_WINDOW_EXECUTOR_H_
#define HWF_WINDOW_EXECUTOR_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "mst/merge_sort_tree.h"
#include "mst/tree_cache.h"
#include "obs/profile.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "storage/table.h"
#include "window/spec.h"

namespace hwf {

/// Evaluation engine for the window operator. kMergeSortTree is the paper's
/// contribution and the production default; the others are the evaluated
/// competitors (§5.5) and share the executor's partitioning / sorting /
/// frame-resolution phases so that benchmark comparisons isolate the
/// aggregation algorithm itself.
enum class WindowEngine {
  kMergeSortTree,
  kNaive,               // per-frame re-evaluation (Wesley & Xu "naive")
  kIncremental,         // Wesley & Xu incremental state maintenance
  kOrderStatisticTree,  // counted B-tree (percentile / rank only)
};

/// Regime switch for the PARTITION BY hash partitioner. Under kAuto the
/// executor samples the partition-key hashes, estimates the partition
/// cardinality by inverting the expected-distinct curve, and takes the hash
/// path when partitions are numerous (>= hash_partition_min_partitions) and
/// small (average <= hash_partition_max_avg_rows): rows are scattered into
/// hash buckets morsel-parallel and each bucket is sorted independently —
/// O(n log(n/B)) with embarrassing parallelism — instead of paying one
/// global O(n log n) comparison sort. Partition key equality implies hash
/// equality, so every partition lands whole in one bucket and the partition
/// boundary scan is unchanged; within a partition the order is the same
/// canonical (ORDER BY, row id) sequence as the global sort, which is what
/// keeps results bit-identical between the regimes.
enum class HashPartitionMode {
  kAuto,   // cardinality-estimated cost threshold (the default)
  kOff,    // always the global sort
  kForce,  // always hash-partition when a PARTITION BY is present
};

struct WindowExecutorOptions {
  /// Merge sort tree tuning (fanout, cascading sampling; §5.1, §6.6).
  MergeSortTreeOptions tree;

  /// Task size for morsel-driven parallelism (§5.5: Hyper uses 20 000).
  size_t morsel_size = kDefaultMorselSize;

  WindowEngine engine = WindowEngine::kMergeSortTree;

  /// High-cardinality PARTITION BY regime (see HashPartitionMode). The
  /// kAuto thresholds: take the hash path when the estimated partition
  /// count is at least `hash_partition_min_partitions` AND the average
  /// partition is at most `hash_partition_max_avg_rows` rows (0 = default
  /// to morsel_size — partitions small enough that the partition-parallel
  /// schedule applies). The hash path is budget-aware: when the memory
  /// budget cannot take the partitioner's scratch (row hashes + scatter
  /// histograms), it falls back to the global sort, which can spill.
  HashPartitionMode hash_partition = HashPartitionMode::kAuto;
  size_t hash_partition_min_partitions = 64;
  size_t hash_partition_max_avg_rows = 0;

  /// Force the tree index width: 0 = choose per partition (§5.1: 32-bit
  /// when the partition fits, else 64-bit), 32 or 64 to override.
  int force_index_width = 0;

  /// Memory budget for the execution in bytes; 0 = unlimited. When set,
  /// every large allocation (sort scratch, tree levels, prefix-aggregate
  /// annotations) is accounted against one process-local budget, and the
  /// executor degrades to disk — external-merge sorts, tree-level eviction
  /// with page-wise re-materialization — instead of exceeding it. Budgets
  /// too small for the irreducible working set (the sorted row permutation)
  /// fail fast with ResourceExhausted before any work is done; above that
  /// floor execution always completes, with any unsheddable overshoot
  /// (frame descriptors) recorded in mem.forced_over_budget_bytes. When 0,
  /// the HWF_TEST_MEMORY_LIMIT environment
  /// variable (same syntax as hwf_cli --memory_limit: bytes with an
  /// optional K/M/G suffix) supplies the limit — a CI hook that forces the
  /// spill path under the regular test suite.
  size_t memory_limit_bytes = 0;

  /// Cross-query build-artifact cache (sort permutations, merge sort trees,
  /// rank codes). Engaged only when BOTH `tree_cache` is non-null and
  /// `cache_key` is non-empty — the key must uniquely identify the table
  /// *contents* (the service uses a globally monotonic table-version epoch;
  /// reusing a key after the rows change serves stale results). Caching is
  /// additionally disabled for budgeted executions (memory_limit_bytes > 0
  /// or HWF_TEST_MEMORY_LIMIT): cached artifacts outlive the query, so they
  /// must not be accounted against — or spill through — a per-query budget.
  mst::TreeCache* tree_cache = nullptr;
  std::string cache_key;

  /// Streaming-ingest execution (src/ingest/), set by the service when the
  /// catalog snapshot may carry un-compacted appended rows. All three are
  /// inert unless the cache is engaged.
  ///
  ///  - `content_cache_key` identifies the table *content* ("t<epoch>.g<gen>"):
  ///    row values are a pure function of it, and appends only extend the id
  ///    range. Per-partition artifacts are then keyed by content + the
  ///    partition's (first sorted row id, row count, last sorted row id) —
  ///    coordinates that pin down the exact row set — so partitions untouched
  ///    by an append re-hit their cached trees, and compaction (which keeps
  ///    ids, epoch and gen stable) invalidates nothing.
  ///  - `delta_base_rows` / `delta_base_key`: ids in [delta_base_rows, n) are
  ///    appended since the last compaction. When the base state's sort
  ///    artifact (under `delta_base_key`) is cached, the combined artifact is
  ///    derived by sorting just the delta and stably merging — O(d log d + n)
  ///    charged to kDeltaMerge instead of an O(n log n) re-sort — with a
  ///    result bit-identical to the cold sort (the row-id tiebreak makes the
  ///    sort a unique total order, so any merge of sorted subsets reproduces
  ///    it exactly).
  size_t delta_base_rows = 0;
  std::string delta_base_key;
  std::string content_cache_key;

  /// When non-null, cleared on entry and filled with the execution's cost
  /// breakdown: per-phase wall seconds (sort, partition, frame resolution,
  /// tree build with per-level detail, probe), row/partition counts, and
  /// the counter activity of the run. The object must outlive the call;
  /// the executor also routes it into MergeSortTreeOptions::profile so
  /// tree builds report their per-level timings.
  obs::ExecutionProfile* profile = nullptr;
};

/// One group of calls sharing one OVER clause, for multi-spec execution.
/// `spec` must outlive the call; `calls` may be empty (the spec's sort
/// still participates in the sharing plan).
struct WindowSpecGroup {
  const WindowSpec* spec = nullptr;
  std::span<const WindowFunctionCall> calls;
};

/// Evaluates several groups of window function calls — a whole query's
/// worth of distinct OVER clauses — in one execution.
///
/// The executor runs the shared-sort optimizer (window/shared_sort.h) over
/// the specs: specs whose ordering requirement is covered by another spec's
/// sort reuse that sort's permutation and partition boundaries instead of
/// paying their own (verbatim for identical ORDER BY, via an O(n)
/// tie-group row-id re-sort when the producer's ordering is strictly
/// finer), and per-partition tree artifacts are cached under the canonical
/// ordering key so they are shared across frames and PARTITION BY
/// permutations. Producers with a high-cardinality PARTITION BY take the
/// hash-partitioning path (see HashPartitionMode). Results are bit-identical
/// to evaluating every group independently.
///
/// Returns one vector of result columns per group, aligned with the input
/// groups and, within a group, with its calls.
StatusOr<std::vector<std::vector<Column>>> EvaluateWindowSpecGroups(
    const Table& table, std::span<const WindowSpecGroup> groups,
    const WindowExecutorOptions& options = {},
    ThreadPool& pool = ThreadPool::Default());

/// Evaluates several window function calls sharing one OVER clause.
///
/// Partitioning, sorting and frame resolution are performed once and shared
/// across the calls (the optimization of Kohn et al. [24] / Cao et al. [11]
/// at the granularity this library needs). Returns one result column per
/// call, aligned with the input table's row order.
StatusOr<std::vector<Column>> EvaluateWindowFunctions(
    const Table& table, const WindowSpec& spec,
    std::span<const WindowFunctionCall> calls,
    const WindowExecutorOptions& options = {},
    ThreadPool& pool = ThreadPool::Default());

/// Single-call convenience wrapper.
StatusOr<Column> EvaluateWindowFunction(
    const Table& table, const WindowSpec& spec,
    const WindowFunctionCall& call,
    const WindowExecutorOptions& options = {},
    ThreadPool& pool = ThreadPool::Default());

}  // namespace hwf

#endif  // HWF_WINDOW_EXECUTOR_H_
