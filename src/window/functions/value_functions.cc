#include <algorithm>
#include <cstdint>
#include <vector>

#include "window/evaluator.h"
#include "window/functions/selection.h"

namespace hwf {
namespace internal_window {
namespace {

/// Framed value functions (§4.5): FIRST_VALUE / LAST_VALUE / NTH_VALUE
/// select the i-th frame row under the function-level ORDER BY (falling
/// back to the frame order, which matches the standard SQL semantics) and
/// evaluate the argument there. IGNORE NULLS drops rows whose argument is
/// NULL before selection.
template <typename Index>
Status EvalValueFunctionT(const PartitionView& view,
                          const WindowFunctionCall& call, Column* out) {
  StatusOr<std::shared_ptr<const SelectionTree<Index>>> sel_or =
      SelectionTree<Index>::Obtain(view, call,
                                   /*drop_null_args=*/call.ignore_nulls);
  if (!sel_or.ok()) return sel_or.status();
  const SelectionTree<Index>& sel = **sel_or;
  const Column& arg = view.col(*call.argument);

  const size_t batch = view.options->tree.probe_batch_size;
  // The selected row's value is emitted identically on both paths.
  auto emit = [&](size_t row, size_t selected) {
    if (arg.IsNull(selected)) {
      out->SetNull(row);
      return;
    }
    switch (out->type()) {
      case DataType::kInt64:
        out->SetInt64(row, arg.GetInt64(selected));
        break;
      case DataType::kDouble:
        out->SetDouble(row, arg.GetDouble(selected));
        break;
      case DataType::kString:
        out->SetString(row, arg.GetString(selected));
        break;
    }
  };
  // Frame rank to select for a frame of `total` qualifying rows.
  auto rank_for = [&](size_t total) -> size_t {
    switch (call.kind) {
      case WindowFunctionKind::kFirstValue:
        return 0;
      case WindowFunctionKind::kLastValue:
        return total == 0 ? 0 : total - 1;
      case WindowFunctionKind::kNthValue:
        return static_cast<size_t>(call.param - 1);
      default:
        HWF_CHECK_MSG(false, "not a value function");
        return 0;
    }
  };

  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        KeyRange<Index> ranges[FrameRanges::kMaxRanges];
        if (batch > 0) {
          // Batched path: one select query per non-null row per chunk.
          std::vector<KeyRange<Index>> range_pool;
          std::vector<typename SelectionTree<Index>::SelectQuery> queries;
          std::vector<size_t> rows;
          std::vector<size_t> selected;
          for (size_t chunk = lo; chunk < hi; chunk += kProbeChunkRows) {
            const size_t chunk_end = std::min(hi, chunk + kProbeChunkRows);
            range_pool.clear();
            queries.clear();
            rows.clear();
            for (size_t i = chunk; i < chunk_end; ++i) {
              const size_t row = view.rows[i];
              size_t total = 0;
              const size_t num_ranges =
                  sel.MapKeyRanges(view.frames[i], ranges, &total);
              const size_t idx = rank_for(total);
              if (total == 0 || idx >= total) {
                out->SetNull(row);
                continue;
              }
              const uint32_t range_begin =
                  static_cast<uint32_t>(range_pool.size());
              range_pool.insert(range_pool.end(), ranges, ranges + num_ranges);
              queries.push_back(
                  {range_begin, static_cast<uint32_t>(num_ranges), idx});
              rows.push_back(row);
            }
            selected.resize(queries.size());
            sel.SelectPositionsBatch(range_pool, queries, batch,
                                     selected.data());
            GatherRowsWithPrefetch(view.rows.data(), selected.data(),
                                   selected.size(), selected.data());
            for (size_t q = 0; q < queries.size(); ++q) {
              if (q + kGatherLookahead < queries.size()) {
                arg.PrefetchRow(selected[q + kGatherLookahead]);
              }
              emit(rows[q], selected[q]);
            }
          }
          return;
        }
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          size_t total = 0;
          const size_t num_ranges =
              sel.MapKeyRanges(view.frames[i], ranges, &total);
          const size_t idx = rank_for(total);
          if (total == 0 || idx >= total) {
            out->SetNull(row);
            continue;
          }
          const size_t selected = view.rows[sel.SelectPosition(
              std::span<const KeyRange<Index>>(ranges, num_ranges), idx)];
          emit(row, selected);
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

}  // namespace
}  // namespace internal_window

Status EvalValueFunction(const PartitionView& view,
                         const WindowFunctionCall& call, Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalValueFunctionT<Index>(view, call, out);
      });
}

}  // namespace hwf
