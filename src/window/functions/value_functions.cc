#include <cstdint>

#include "window/evaluator.h"
#include "window/functions/selection.h"

namespace hwf {
namespace internal_window {
namespace {

/// Framed value functions (§4.5): FIRST_VALUE / LAST_VALUE / NTH_VALUE
/// select the i-th frame row under the function-level ORDER BY (falling
/// back to the frame order, which matches the standard SQL semantics) and
/// evaluate the argument there. IGNORE NULLS drops rows whose argument is
/// NULL before selection.
template <typename Index>
Status EvalValueFunctionT(const PartitionView& view,
                          const WindowFunctionCall& call, Column* out) {
  const SelectionTree<Index> sel = SelectionTree<Index>::Build(
      view, call, /*drop_null_args=*/call.ignore_nulls);
  const Column& arg = view.col(*call.argument);

  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        KeyRange<Index> ranges[FrameRanges::kMaxRanges];
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          size_t total = 0;
          const size_t num_ranges =
              sel.MapKeyRanges(view.frames[i], ranges, &total);
          size_t idx = 0;
          switch (call.kind) {
            case WindowFunctionKind::kFirstValue:
              idx = 0;
              break;
            case WindowFunctionKind::kLastValue:
              idx = total == 0 ? 0 : total - 1;
              break;
            case WindowFunctionKind::kNthValue:
              idx = static_cast<size_t>(call.param - 1);
              break;
            default:
              HWF_CHECK_MSG(false, "not a value function");
          }
          if (total == 0 || idx >= total) {
            out->SetNull(row);
            continue;
          }
          const size_t selected = view.rows[sel.SelectPosition(
              std::span<const KeyRange<Index>>(ranges, num_ranges), idx)];
          if (arg.IsNull(selected)) {
            out->SetNull(row);
          } else {
            switch (out->type()) {
              case DataType::kInt64:
                out->SetInt64(row, arg.GetInt64(selected));
                break;
              case DataType::kDouble:
                out->SetDouble(row, arg.GetDouble(selected));
                break;
              case DataType::kString:
                out->SetString(row, arg.GetString(selected));
                break;
            }
          }
        }
      },
      *view.pool, view.options->morsel_size);
  return Status::OK();
}

}  // namespace
}  // namespace internal_window

Status EvalValueFunction(const PartitionView& view,
                         const WindowFunctionCall& call, Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalValueFunctionT<Index>(view, call, out);
      });
}

}  // namespace hwf
