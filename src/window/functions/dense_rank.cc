#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stop_token.h"
#include "mst/dense_rank_tree.h"
#include "mst/permutation.h"
#include "mst/preprocess.h"
#include "mst/tree_cache.h"
#include "obs/profile.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace internal_window {
namespace {

/// The cacheable build product of DENSE_RANK: the FILTER remap, the dense
/// codes over all partition positions and the 3-d range tree over the
/// surviving positions' codes.
template <typename Index>
struct DenseRankArtifact {
  IndexRemap remap;
  std::vector<Index> codes;
  DenseRankTree<Index> tree;

  static DenseRankArtifact Build(const PartitionView& view,
                                 const WindowFunctionCall& call) {
    DenseRankArtifact result;
    const size_t n = view.size();
    result.remap = BuildCallRemap(view, call, /*drop_null_args=*/false);
    const size_t m = result.remap.num_surviving();
    const std::vector<SortKey> order = EffectiveOrder(*view.spec, call);
    PositionLess less{&view, order};
    auto cmp = [&less](size_t a, size_t b) { return less(a, b); };
    // Dense-code construction is Algorithm 1 preprocessing (kPreprocess);
    // kProbe then measures the per-row distinct counts only.
    std::vector<Index> filtered_codes(m);
    {
      obs::ScopedPhaseTimer timer(view.options->profile,
                                  obs::ProfilePhase::kPreprocess);
      if (view.options->tree.fuse_preprocess && less.encoded()) {
        PreprocessRequest req;
        req.want_dense = true;
        PreprocessResult<Index> pre = PreprocessOrderKeys<Index>(
            n, [&less](size_t i) { return less.EncodedKey(i); }, req,
            *view.pool, view.options->tree.use_ovc, view.options->profile);
        result.codes = std::move(pre.dense_codes);
      } else {
        obs::ScopedPreprocessStepTimer legacy_timer(
            view.options->profile, obs::PreprocessStep::kLegacy);
        result.codes = ComputeDenseCodes<Index>(n, cmp, nullptr, *view.pool);
      }
      for (size_t j = 0; j < m; ++j) {
        filtered_codes[j] = result.codes[result.remap.ToOriginal(j)];
      }
    }
    result.tree = DenseRankTree<Index>::Build(
        std::span<const Index>(filtered_codes), view.options->tree,
        *view.pool);
    return result;
  }

  static StatusOr<std::shared_ptr<const DenseRankArtifact>> Obtain(
      const PartitionView& view, const WindowFunctionCall& call) {
    if (view.cache == nullptr) {
      DenseRankArtifact built = Build(view, call);
      if (Status stop = CheckStop(); !stop.ok()) return stop;
      return std::make_shared<const DenseRankArtifact>(std::move(built));
    }
    const std::string key =
        view.cache_prefix + "|drank" +
        CallCacheKey(view, call, /*drop_null_args=*/false) + "|w" +
        std::to_string(sizeof(Index));
    return view.cache->GetOrBuild<DenseRankArtifact>(
        key, [&]() -> StatusOr<mst::TreeCache::Built<DenseRankArtifact>> {
          DenseRankArtifact built = Build(view, call);
          if (Status stop = CheckStop(); !stop.ok()) return stop;
          const size_t bytes = built.tree.MemoryUsageBytes() +
                               built.remap.ApproxBytes() +
                               built.codes.capacity() * sizeof(Index);
          return mst::TreeCache::Built<DenseRankArtifact>{
              std::make_shared<const DenseRankArtifact>(std::move(built)),
              bytes};
        });
  }
};

/// Framed DENSE_RANK (§4.4): count of distinct values ordered strictly
/// before the current row within the frame, plus one. Backed by the 3-d
/// range tree; exclusion clauses are rejected during validation.
template <typename Index>
Status EvalDenseRankT(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out) {
  const size_t n = view.size();
  StatusOr<std::shared_ptr<const DenseRankArtifact<Index>>> artifact_or =
      DenseRankArtifact<Index>::Obtain(view, call);
  if (!artifact_or.ok()) return artifact_or.status();
  const IndexRemap& remap = (*artifact_or)->remap;
  const std::vector<Index>& codes = (*artifact_or)->codes;
  const DenseRankTree<Index>& tree = (*artifact_or)->tree;

  const size_t batch = view.options->tree.probe_batch_size;
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        if (batch > 0) {
          // Batched path: each chunk's distinct counts run through the
          // range tree's grouped kernel (per-level batched MST counts).
          std::vector<typename DenseRankTree<Index>::DistinctQuery> queries;
          std::vector<size_t> rows;
          std::vector<size_t> smaller;
          for (size_t chunk = lo; chunk < hi; chunk += kProbeChunkRows) {
            const size_t chunk_end = std::min(hi, chunk + kProbeChunkRows);
            queries.clear();
            rows.clear();
            for (size_t i = chunk; i < chunk_end; ++i) {
              const size_t num_ranges =
                  MapRangesToFiltered(view.frames[i], remap, ranges);
              HWF_CHECK_MSG(num_ranges <= 1,
                            "dense_rank does not support frame exclusion");
              if (num_ranges == 0) {
                out->SetInt64(view.rows[i], 1);
                continue;
              }
              queries.push_back(
                  {ranges[0].begin, ranges[0].end, codes[i]});
              rows.push_back(view.rows[i]);
            }
            smaller.resize(queries.size());
            tree.CountDistinctLessBatch(queries, batch, smaller.data());
            for (size_t q = 0; q < queries.size(); ++q) {
              out->SetInt64(rows[q], static_cast<int64_t>(smaller[q]) + 1);
            }
          }
          return;
        }
        for (size_t i = lo; i < hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          HWF_CHECK_MSG(num_ranges <= 1,
                        "dense_rank does not support frame exclusion");
          size_t smaller = 0;
          if (num_ranges == 1) {
            smaller = tree.CountDistinctLess(ranges[0].begin, ranges[0].end,
                                             codes[i]);
          }
          out->SetInt64(view.rows[i], static_cast<int64_t>(smaller) + 1);
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

}  // namespace
}  // namespace internal_window

Status EvalDenseRank(const PartitionView& view, const WindowFunctionCall& call,
                     Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalDenseRankT<Index>(view, call, out);
      });
}

}  // namespace hwf
