#include <cstdint>
#include <vector>

#include "mst/dense_rank_tree.h"
#include "mst/permutation.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace internal_window {
namespace {

/// Framed DENSE_RANK (§4.4): count of distinct values ordered strictly
/// before the current row within the frame, plus one. Backed by the 3-d
/// range tree; exclusion clauses are rejected during validation.
template <typename Index>
Status EvalDenseRankT(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out) {
  const size_t n = view.size();
  const IndexRemap remap =
      BuildCallRemap(view, call, /*drop_null_args=*/false);
  const size_t m = remap.num_surviving();
  const std::vector<SortKey> order = EffectiveOrder(*view.spec, call);
  PositionLess less{&view, order};
  auto cmp = [&less](size_t a, size_t b) { return less(a, b); };
  const std::vector<Index> codes =
      ComputeDenseCodes<Index>(n, cmp, nullptr, *view.pool);

  std::vector<Index> filtered_codes(m);
  for (size_t j = 0; j < m; ++j) {
    filtered_codes[j] = codes[remap.ToOriginal(j)];
  }
  const DenseRankTree<Index> tree = DenseRankTree<Index>::Build(
      std::span<const Index>(filtered_codes), view.options->tree, *view.pool);

  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        for (size_t i = lo; i < hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          HWF_CHECK_MSG(num_ranges <= 1,
                        "dense_rank does not support frame exclusion");
          size_t smaller = 0;
          if (num_ranges == 1) {
            smaller = tree.CountDistinctLess(ranges[0].begin, ranges[0].end,
                                             codes[i]);
          }
          out->SetInt64(view.rows[i], static_cast<int64_t>(smaller) + 1);
        }
      },
      *view.pool, view.options->morsel_size);
  return Status::OK();
}

}  // namespace
}  // namespace internal_window

Status EvalDenseRank(const PartitionView& view, const WindowFunctionCall& call,
                     Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalDenseRankT<Index>(view, call, out);
      });
}

}  // namespace hwf
