#include <algorithm>
#include <cstdint>
#include <vector>

#include "mst/dense_rank_tree.h"
#include "mst/permutation.h"
#include "obs/profile.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace internal_window {
namespace {

/// Framed DENSE_RANK (§4.4): count of distinct values ordered strictly
/// before the current row within the frame, plus one. Backed by the 3-d
/// range tree; exclusion clauses are rejected during validation.
template <typename Index>
Status EvalDenseRankT(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out) {
  const size_t n = view.size();
  const IndexRemap remap =
      BuildCallRemap(view, call, /*drop_null_args=*/false);
  const size_t m = remap.num_surviving();
  const std::vector<SortKey> order = EffectiveOrder(*view.spec, call);
  PositionLess less{&view, order};
  auto cmp = [&less](size_t a, size_t b) { return less(a, b); };
  // Dense-code construction is Algorithm 1 preprocessing (kPreprocess);
  // kProbe then measures the per-row distinct counts only.
  std::vector<Index> codes;
  std::vector<Index> filtered_codes(m);
  {
    obs::ScopedPhaseTimer timer(view.options->profile,
                                obs::ProfilePhase::kPreprocess);
    codes = ComputeDenseCodes<Index>(n, cmp, nullptr, *view.pool);
    for (size_t j = 0; j < m; ++j) {
      filtered_codes[j] = codes[remap.ToOriginal(j)];
    }
  }
  const DenseRankTree<Index> tree = DenseRankTree<Index>::Build(
      std::span<const Index>(filtered_codes), view.options->tree, *view.pool);

  const size_t batch = view.options->tree.probe_batch_size;
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        if (batch > 0) {
          // Batched path: each chunk's distinct counts run through the
          // range tree's grouped kernel (per-level batched MST counts).
          std::vector<typename DenseRankTree<Index>::DistinctQuery> queries;
          std::vector<size_t> rows;
          std::vector<size_t> smaller;
          for (size_t chunk = lo; chunk < hi; chunk += kProbeChunkRows) {
            const size_t chunk_end = std::min(hi, chunk + kProbeChunkRows);
            queries.clear();
            rows.clear();
            for (size_t i = chunk; i < chunk_end; ++i) {
              const size_t num_ranges =
                  MapRangesToFiltered(view.frames[i], remap, ranges);
              HWF_CHECK_MSG(num_ranges <= 1,
                            "dense_rank does not support frame exclusion");
              if (num_ranges == 0) {
                out->SetInt64(view.rows[i], 1);
                continue;
              }
              queries.push_back(
                  {ranges[0].begin, ranges[0].end, codes[i]});
              rows.push_back(view.rows[i]);
            }
            smaller.resize(queries.size());
            tree.CountDistinctLessBatch(queries, batch, smaller.data());
            for (size_t q = 0; q < queries.size(); ++q) {
              out->SetInt64(rows[q], static_cast<int64_t>(smaller[q]) + 1);
            }
          }
          return;
        }
        for (size_t i = lo; i < hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          HWF_CHECK_MSG(num_ranges <= 1,
                        "dense_rank does not support frame exclusion");
          size_t smaller = 0;
          if (num_ranges == 1) {
            smaller = tree.CountDistinctLess(ranges[0].begin, ranges[0].end,
                                             codes[i]);
          }
          out->SetInt64(view.rows[i], static_cast<int64_t>(smaller) + 1);
        }
      },
      *view.pool, view.options->morsel_size);
  return Status::OK();
}

}  // namespace
}  // namespace internal_window

Status EvalDenseRank(const PartitionView& view, const WindowFunctionCall& call,
                     Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalDenseRankT<Index>(view, call, out);
      });
}

}  // namespace hwf
