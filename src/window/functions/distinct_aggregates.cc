#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/stop_token.h"
#include "mst/aggregate_ops.h"
#include "mst/annotated_mst.h"
#include "mst/merge_sort_tree.h"
#include "mst/preprocess.h"
#include "mst/prev_index.h"
#include "obs/profile.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {

namespace internal_window {

std::vector<uint64_t> GatherArgumentCodes(const PartitionView& view,
                                          size_t argument,
                                          const IndexRemap& remap) {
  const Column& column = view.col(argument);
  const size_t m = remap.num_surviving();
  std::vector<uint64_t> codes(m);
  ParallelFor(
      0, m,
      [&](size_t lo, size_t hi) {
        for (size_t j = lo; j < hi; ++j) {
          codes[j] = column.Hash(view.rows[remap.ToOriginal(j)]);
        }
      },
      *view.pool);
  return codes;
}

namespace {

/// Shared preprocessing front half of the distinct evaluators: hash the
/// argument column, then derive prevIdcs (and nextIdcs under exclusion)
/// either through the fused single-sort pipeline or the legacy per-artifact
/// sorts, as configured. Caller wraps this in the kPreprocess phase timer.
template <typename Index>
void DistinctPreprocess(const PartitionView& view, size_t argument,
                        const IndexRemap& remap, bool has_exclusion,
                        std::vector<uint64_t>* codes, std::vector<Index>* prev,
                        std::vector<Index>* next) {
  obs::ExecutionProfile* profile = view.options->profile;
  {
    obs::ScopedPreprocessStepTimer gather_timer(
        profile, obs::PreprocessStep::kGatherCodes);
    *codes = GatherArgumentCodes(view, argument, remap);
  }
  if (view.options->tree.fuse_preprocess) {
    PreprocessRequest req;
    req.want_prev = true;
    req.want_next = has_exclusion;
    PreprocessResult<Index> pre = PreprocessHashedCodes<Index>(
        *codes, req, *view.pool, view.options->tree.use_ovc, profile);
    *prev = std::move(pre.prev);
    *next = std::move(pre.next);
  } else {
    obs::ScopedPreprocessStepTimer legacy_timer(profile,
                                                obs::PreprocessStep::kLegacy);
    *prev = ComputePrevIndices<Index>(*codes, *view.pool);
    if (has_exclusion) *next = ComputeNextIndices<Index>(*codes, *view.pool);
  }
}

}  // namespace

namespace {

/// Walks the exclusion gaps of a multi-range frame and reports, for every
/// distinct value whose *first* in-frame-window occurrence lies inside a
/// gap but which re-appears inside a later range, one representative
/// position inside that range.
///
/// Rationale (extension of §4.7; the paper only sketches exclusion
/// support): per-range counting with the union's begin as threshold counts
/// exactly the values whose first occurrence within W = [union begin,
/// union end) lies inside a range. Values first occurring inside a gap are
/// missed even when they re-appear in a later range, because the
/// re-appearance's backreference points into the gap. This walk adds those
/// back. Cost is O(gap size) per row — constant for EXCLUDE CURRENT ROW.
///
/// `ranges` are the filtered frame ranges (ascending); prev/next are the
/// encoded previous- and plain next-occurrence arrays over the filtered
/// domain. Calls `found(range_position)` once per missed value.
template <typename Index, typename Found>
void ForEachGapCorrection(const RowRange* ranges, size_t num_ranges,
                          const std::vector<Index>& prev,
                          const std::vector<Index>& next, Found&& found) {
  if (num_ranges < 2) return;
  const size_t union_begin = ranges[0].begin;
  const size_t union_end = ranges[num_ranges - 1].end;
  const Index first_threshold = static_cast<Index>(union_begin + 1);
  auto in_some_range = [&](size_t pos) {
    for (size_t r = 0; r < num_ranges; ++r) {
      if (pos >= ranges[r].begin && pos < ranges[r].end) return true;
    }
    return false;
  };
  for (size_t g = 0; g + 1 < num_ranges; ++g) {
    for (size_t q = ranges[g].end; q < ranges[g + 1].begin; ++q) {
      if (prev[q] >= first_threshold) continue;  // Not first-in-W.
      // Walk the occurrence chain forward until it leaves the window or
      // hits a range.
      size_t r = static_cast<size_t>(next[q]);
      while (r < union_end) {
        if (in_some_range(r)) {
          found(r);
          break;
        }
        r = static_cast<size_t>(next[r]);
      }
    }
  }
}

template <typename Index>
Status EvalCountDistinctT(const PartitionView& view,
                          const WindowFunctionCall& call, Column* out) {
  const IndexRemap remap = BuildCallRemap(view, call, /*drop_null_args=*/true);
  const bool has_exclusion =
      view.spec->frame.exclusion != FrameExclusion::kNoOthers;
  // Code/prevIdcs construction is Algorithm 1 preprocessing (kPreprocess);
  // kProbe then measures the per-row counts only.
  std::vector<uint64_t> codes;
  std::vector<Index> prev;
  std::vector<Index> next;
  {
    obs::ScopedPhaseTimer timer(view.options->profile,
                                obs::ProfilePhase::kPreprocess);
    DistinctPreprocess<Index>(view, *call.argument, remap, has_exclusion,
                              &codes, &prev, &next);
  }

  const MergeSortTree<Index> tree =
      MergeSortTree<Index>::Build(prev, view.options->tree, *view.pool);
  // A build cut short by cancellation must never be probed: its level data
  // and cascade offsets are garbage.
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  const size_t batch = view.options->tree.probe_batch_size;
  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        if (batch > 0) {
          // Batched path: one CountLess query per frame range per chunk
          // row; counts are integer sums, so the per-range addition order
          // is immaterial. Gap corrections stay scalar (O(gap) walks).
          struct RowTask {
            size_t view_index;
            uint32_t range_begin;
            uint32_t num_ranges;
          };
          std::vector<typename MergeSortTree<Index>::CountQuery> queries;
          std::vector<RowRange> range_pool;
          std::vector<RowTask> tasks;
          std::vector<size_t> counts;
          for (size_t chunk = lo; chunk < hi; chunk += kProbeChunkRows) {
            const size_t chunk_end = std::min(hi, chunk + kProbeChunkRows);
            queries.clear();
            range_pool.clear();
            tasks.clear();
            for (size_t i = chunk; i < chunk_end; ++i) {
              const size_t num_ranges =
                  MapRangesToFiltered(view.frames[i], remap, ranges);
              if (num_ranges == 0) {
                out->SetInt64(view.rows[i], 0);
                continue;
              }
              const Index threshold = static_cast<Index>(ranges[0].begin + 1);
              tasks.push_back({i, static_cast<uint32_t>(range_pool.size()),
                               static_cast<uint32_t>(num_ranges)});
              range_pool.insert(range_pool.end(), ranges,
                                ranges + num_ranges);
              for (size_t r = 0; r < num_ranges; ++r) {
                queries.push_back(
                    {ranges[r].begin, ranges[r].end, threshold});
              }
            }
            counts.resize(queries.size());
            tree.CountLessBatch(queries, batch, counts.data());
            size_t q = 0;
            for (const RowTask& task : tasks) {
              size_t count = 0;
              for (size_t r = 0; r < task.num_ranges; ++r) count += counts[q++];
              ForEachGapCorrection<Index>(range_pool.data() + task.range_begin,
                                          task.num_ranges, prev, next,
                                          [&](size_t) { ++count; });
              out->SetInt64(view.rows[task.view_index],
                            static_cast<int64_t>(count));
            }
          }
          return;
        }
        for (size_t i = lo; i < hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          size_t count = 0;
          if (num_ranges > 0) {
            const Index threshold = static_cast<Index>(ranges[0].begin + 1);
            for (size_t r = 0; r < num_ranges; ++r) {
              count += tree.CountLess(ranges[r].begin, ranges[r].end,
                                      threshold);
            }
            ForEachGapCorrection<Index>(ranges, num_ranges, prev, next,
                                        [&](size_t) { ++count; });
          }
          out->SetInt64(view.rows[i], static_cast<int64_t>(count));
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

/// Generic distinct aggregate: annotated tree + per-range prefix merging +
/// gap corrections. `get_input(filtered_pos)` produces the Ops input;
/// `write(row, state_or_null)` stores the result.
template <typename Index, typename Ops, typename GetInput, typename Write>
Status EvalDistinctAggregateT(const PartitionView& view,
                              const WindowFunctionCall& call,
                              GetInput&& get_input, Write&& write) {
  using State = typename Ops::State;
  const IndexRemap remap = BuildCallRemap(view, call, /*drop_null_args=*/true);
  const size_t m = remap.num_surviving();
  const bool has_exclusion =
      view.spec->frame.exclusion != FrameExclusion::kNoOthers;
  // Code/prevIdcs/input gathering is Algorithm 1 preprocessing
  // (kPreprocess); kProbe then measures the per-row aggregation only.
  std::vector<uint64_t> codes;
  std::vector<Index> prev;
  std::vector<Index> next;
  std::vector<typename Ops::Input> inputs(m);
  {
    obs::ScopedPhaseTimer timer(view.options->profile,
                                obs::ProfilePhase::kPreprocess);
    DistinctPreprocess<Index>(view, *call.argument, remap, has_exclusion,
                              &codes, &prev, &next);
    for (size_t j = 0; j < m; ++j) inputs[j] = get_input(j);
  }

  // Keep a copy of prev for the correction walks (the build consumes it).
  std::vector<Index> prev_copy;
  if (has_exclusion) prev_copy = prev;
  const AnnotatedMergeSortTree<Index, Ops> tree =
      AnnotatedMergeSortTree<Index, Ops>::Build(
          std::move(prev), std::move(inputs), view.options->tree, *view.pool);
  // A build cut short by cancellation must never be probed (see above).
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  const size_t batch = view.options->tree.probe_batch_size;
  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        if (batch > 0) {
          // Batched path: one AggregateLess query per frame range per chunk
          // row. The kernel merges each query's cover pieces in the scalar
          // visit order and the per-row merge below folds the per-range
          // states in range order, so floating-point states are
          // bit-identical to the scalar path. Gap corrections stay scalar.
          struct RowTask {
            size_t view_index;
            uint32_t range_begin;
            uint32_t num_ranges;
          };
          std::vector<typename MergeSortTree<Index>::CountQuery> queries;
          std::vector<RowRange> range_pool;
          std::vector<RowTask> tasks;
          std::vector<std::optional<State>> pieces;
          for (size_t chunk = lo; chunk < hi; chunk += kProbeChunkRows) {
            const size_t chunk_end = std::min(hi, chunk + kProbeChunkRows);
            queries.clear();
            range_pool.clear();
            tasks.clear();
            for (size_t i = chunk; i < chunk_end; ++i) {
              const size_t num_ranges =
                  MapRangesToFiltered(view.frames[i], remap, ranges);
              if (num_ranges == 0) {
                write(view.rows[i], std::optional<State>());
                continue;
              }
              const Index threshold = static_cast<Index>(ranges[0].begin + 1);
              tasks.push_back({i, static_cast<uint32_t>(range_pool.size()),
                               static_cast<uint32_t>(num_ranges)});
              range_pool.insert(range_pool.end(), ranges,
                                ranges + num_ranges);
              for (size_t r = 0; r < num_ranges; ++r) {
                queries.push_back(
                    {ranges[r].begin, ranges[r].end, threshold});
              }
            }
            pieces.assign(queries.size(), std::optional<State>());
            tree.AggregateLessBatch(queries, batch, pieces.data());
            size_t q = 0;
            for (const RowTask& task : tasks) {
              std::optional<State> state;
              for (size_t r = 0; r < task.num_ranges; ++r) {
                const std::optional<State>& piece = pieces[q++];
                if (piece.has_value()) {
                  if (state.has_value()) {
                    Ops::Merge(*state, *piece);
                  } else {
                    state = *piece;
                  }
                }
              }
              ForEachGapCorrection<Index>(
                  range_pool.data() + task.range_begin, task.num_ranges,
                  prev_copy, next, [&](size_t pos) {
                    const State piece = Ops::MakeState(get_input(pos));
                    if (state.has_value()) {
                      Ops::Merge(*state, piece);
                    } else {
                      state = piece;
                    }
                  });
              write(view.rows[task.view_index], state);
            }
          }
          return;
        }
        for (size_t i = lo; i < hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          std::optional<State> state;
          if (num_ranges > 0) {
            const Index threshold = static_cast<Index>(ranges[0].begin + 1);
            for (size_t r = 0; r < num_ranges; ++r) {
              std::optional<State> piece = tree.AggregateLess(
                  ranges[r].begin, ranges[r].end, threshold);
              if (piece.has_value()) {
                if (state.has_value()) {
                  Ops::Merge(*state, *piece);
                } else {
                  state = *piece;
                }
              }
            }
            ForEachGapCorrection<Index>(
                ranges, num_ranges, prev_copy, next, [&](size_t pos) {
                  const State piece = Ops::MakeState(get_input(pos));
                  if (state.has_value()) {
                    Ops::Merge(*state, piece);
                  } else {
                    state = piece;
                  }
                });
          }
          write(view.rows[i], state);
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

template <typename Index>
Status EvalDistinctDispatch(const PartitionView& view,
                            const WindowFunctionCall& call, Column* out) {
  const Column& arg = view.col(*call.argument);
  const bool arg_is_int = arg.type() == DataType::kInt64;

  // Input getters need the remap, which EvalDistinctAggregateT builds
  // internally; rebuild here for value access (cheap relative to sorting).
  const IndexRemap remap = BuildCallRemap(view, call, /*drop_null_args=*/true);
  auto int_input = [&](size_t j) {
    return arg.GetInt64(view.rows[remap.ToOriginal(j)]);
  };
  auto dbl_input = [&](size_t j) {
    return arg.GetNumeric(view.rows[remap.ToOriginal(j)]);
  };

  switch (call.kind) {
    case WindowFunctionKind::kCountDistinct:
      return EvalCountDistinctT<Index>(view, call, out);
    case WindowFunctionKind::kSumDistinct:
      if (arg_is_int) {
        return EvalDistinctAggregateT<Index, SumInt64Ops>(
            view, call, int_input,
            [&](size_t row, const std::optional<int64_t>& state) {
              if (state.has_value()) {
                out->SetInt64(row, *state);
              } else {
                out->SetNull(row);
              }
            });
      }
      return EvalDistinctAggregateT<Index, SumOps>(
          view, call, dbl_input,
          [&](size_t row, const std::optional<double>& state) {
            if (state.has_value()) {
              out->SetDouble(row, *state);
            } else {
              out->SetNull(row);
            }
          });
    case WindowFunctionKind::kAvgDistinct:
      return EvalDistinctAggregateT<Index, AvgOps>(
          view, call, dbl_input,
          [&](size_t row, const std::optional<AvgOps::State>& state) {
            if (state.has_value() && state->count > 0) {
              out->SetDouble(row, state->sum /
                                      static_cast<double>(state->count));
            } else {
              out->SetNull(row);
            }
          });
    case WindowFunctionKind::kMinDistinct:
    case WindowFunctionKind::kMaxDistinct: {
      const bool is_min = call.kind == WindowFunctionKind::kMinDistinct;
      auto write_numeric = [&](size_t row, const std::optional<double>& s) {
        if (!s.has_value()) {
          out->SetNull(row);
        } else if (out->type() == DataType::kInt64) {
          out->SetInt64(row, static_cast<int64_t>(*s));
        } else {
          out->SetDouble(row, *s);
        }
      };
      if (is_min) {
        return EvalDistinctAggregateT<Index, MinOps>(view, call, dbl_input,
                                                     write_numeric);
      }
      return EvalDistinctAggregateT<Index, MaxOps>(view, call, dbl_input,
                                                   write_numeric);
    }
    default:
      return Status::Internal("not a distinct aggregate");
  }
}

}  // namespace
}  // namespace internal_window

Status EvalDistinctAggregate(const PartitionView& view,
                             const WindowFunctionCall& call, Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalDistinctDispatch<Index>(view, call, out);
      });
}

}  // namespace hwf
