#ifndef HWF_WINDOW_FUNCTIONS_COMMON_H_
#define HWF_WINDOW_FUNCTIONS_COMMON_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mst/remap.h"
#include "obs/counters.h"
#include "window/evaluator.h"

namespace hwf {
namespace internal_window {

/// Runs `fn` with a uint32_t or uint64_t tag depending on the partition
/// size, implementing the per-partition index-width decision of §5.1.
/// `force` is WindowExecutorOptions::force_index_width. Each decision
/// (including forced ones) is counted so profiles show which width a run
/// actually used.
template <typename Fn>
Status DispatchIndexWidth(size_t n, int force, Fn&& fn) {
  const bool fits32 = n + 2 < (uint64_t{1} << 32);
  const bool use32 = force == 32 || (force != 64 && fits32);
  obs::Add(use32 ? obs::Counter::kExecutorIndex32Dispatches
                 : obs::Counter::kExecutorIndex64Dispatches);
  if (use32) {
    HWF_CHECK_MSG(fits32, "partition too large for forced 32-bit indices");
    return fn(uint32_t{0});
  }
  return fn(uint64_t{0});
}

/// Rows per gather/probe/emit cycle in the batched window-function paths
/// (MergeSortTreeOptions::probe_batch_size > 0). Bounds the per-thread
/// query and range scratch while keeping enough queries around to refill
/// the probe kernel's in-flight group many times over.
inline constexpr size_t kProbeChunkRows = 512;

/// Prefetch distance for the index hops that follow a batched probe
/// (selected tree position → partition row → argument value). Each hop is
/// a random access over an array far larger than cache; loading a few
/// iterations ahead overlaps those misses like the kernel overlaps its
/// descents.
inline constexpr size_t kGatherLookahead = 8;

/// dst[i] = table[src[i]] with the prefetch distance above. In-place
/// (dst == src) is allowed.
inline void GatherRowsWithPrefetch(const size_t* table, const size_t* src,
                                   size_t n, size_t* dst) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kGatherLookahead < n) {
      HWF_PREFETCH(table + src[i + kGatherLookahead]);
    }
    dst[i] = table[src[i]];
  }
}

/// Value codes of the call argument over the filtered positions: 64-bit
/// codes where equal values get equal codes. For int64 and double arguments
/// the mapping is injective (Mix64 is a bijection); for strings it is a
/// high-quality hash (§6.7 — the paper's implementation sorts hashes too).
std::vector<uint64_t> GatherArgumentCodes(const PartitionView& view,
                                          size_t argument,
                                          const IndexRemap& remap);

/// Order-preserving 64-bit encoding of a numeric sort key: encoded values
/// compare like (direction-adjusted) SQL values. This is the library's
/// stand-in for Hyper's generated, query-specialized comparators (§5.4):
/// the preprocessing sorts compare two machine words instead of calling a
/// type-dispatching comparator.
uint64_t EncodeInt64Key(int64_t value, bool ascending);
uint64_t EncodeDoubleKey(double value, bool ascending);

/// Deterministic tie-break key for MODE: order-preserving encoding for
/// numeric values (ties resolve to the smallest value), value hash for
/// strings (deterministic but implementation-defined order). Equal values
/// always map to equal keys, so the key doubles as the value's identity.
uint64_t ModeTieKey(const Column& column, size_t row);

/// A comparator over *partition positions* under `order` sort keys.
///
/// On construction, single-key numeric orders are pre-encoded into
/// (null_rank, uint64) pairs so the hot comparison is two array loads;
/// multi-key or string orders fall back to the generic comparator.
class PositionLess {
 public:
  PositionLess(const PartitionView* view, std::span<const SortKey> order)
      : view_(view), order_(order) {
    if (order.size() != 1) return;
    const SortKey& key = order[0];
    const Column& column = view->col(key.column);
    if (column.type() == DataType::kString) return;
    const size_t n = view->size();
    encoded_.resize(n);
    null_rank_.resize(n);
    const bool is_int = column.type() == DataType::kInt64;
    for (size_t i = 0; i < n; ++i) {
      const size_t row = view->rows[i];
      if (column.IsNull(row)) {
        null_rank_[i] = key.nulls_first ? 0 : 2;
        encoded_[i] = 0;
      } else {
        null_rank_[i] = 1;
        encoded_[i] = is_int
                          ? EncodeInt64Key(column.GetInt64(row), key.ascending)
                          : EncodeDoubleKey(column.GetDouble(row),
                                            key.ascending);
      }
    }
  }

  bool operator()(size_t a, size_t b) const {
    if (!encoded_.empty()) {
      if (null_rank_[a] != null_rank_[b]) return null_rank_[a] < null_rank_[b];
      return encoded_[a] < encoded_[b];
    }
    return CompareRowsBy(*view_->table, view_->rows[a], view_->rows[b],
                         order_) < 0;
  }

  /// True when the order is pre-encoded — (null_rank, key) pairs fully
  /// determine the comparison, which is what lets the fused preprocessing
  /// pipeline sort records instead of calling this comparator.
  bool encoded() const { return !encoded_.empty(); }

  /// The position's (null rank, encoded key); only valid when encoded().
  std::pair<uint8_t, uint64_t> EncodedKey(size_t i) const {
    return {null_rank_[i], encoded_[i]};
  }

 private:
  const PartitionView* view_;
  std::span<const SortKey> order_;
  std::vector<uint64_t> encoded_;
  std::vector<uint8_t> null_rank_;
};

}  // namespace internal_window
}  // namespace hwf

#endif  // HWF_WINDOW_FUNCTIONS_COMMON_H_
