#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stop_token.h"
#include "mst/merge_sort_tree.h"
#include "mst/permutation.h"
#include "mst/preprocess.h"
#include "mst/tree_cache.h"
#include "obs/profile.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace internal_window {
namespace {

/// The cacheable build product of the rank functions: the FILTER remap, the
/// function-order codes over all partition positions (the per-row query
/// thresholds) and the tree over the surviving positions' codes.
template <typename Index>
struct RankArtifact {
  IndexRemap remap;
  std::vector<Index> codes;
  MergeSortTree<Index> tree;

  static RankArtifact Build(const PartitionView& view,
                            const WindowFunctionCall& call, bool dense) {
    RankArtifact result;
    const size_t n = view.size();
    result.remap = BuildCallRemap(view, call, /*drop_null_args=*/false);
    const size_t m = result.remap.num_surviving();
    const std::vector<SortKey> order = EffectiveOrder(*view.spec, call);
    PositionLess less{&view, order};
    auto cmp = [&less](size_t a, size_t b) { return less(a, b); };
    // Code construction is Algorithm 1 preprocessing (kPreprocess); kProbe
    // then measures the per-row rank counts only.
    std::vector<Index> keys(m);
    {
      obs::ScopedPhaseTimer timer(view.options->profile,
                                  obs::ProfilePhase::kPreprocess);
      if (view.options->tree.fuse_preprocess && less.encoded()) {
        PreprocessRequest req;
        req.want_dense = dense;
        req.want_unique = !dense;
        PreprocessResult<Index> pre = PreprocessOrderKeys<Index>(
            n, [&less](size_t i) { return less.EncodedKey(i); }, req,
            *view.pool, view.options->tree.use_ovc, view.options->profile);
        result.codes =
            dense ? std::move(pre.dense_codes) : std::move(pre.unique_codes);
      } else {
        obs::ScopedPreprocessStepTimer legacy_timer(
            view.options->profile, obs::PreprocessStep::kLegacy);
        result.codes =
            dense ? ComputeDenseCodes<Index>(n, cmp, nullptr, *view.pool)
                  : ComputeUniqueCodes<Index>(n, cmp, *view.pool);
      }
      for (size_t j = 0; j < m; ++j) {
        keys[j] = result.codes[result.remap.ToOriginal(j)];
      }
    }
    result.tree = MergeSortTree<Index>::Build(std::move(keys),
                                              view.options->tree, *view.pool);
    return result;
  }

  static StatusOr<std::shared_ptr<const RankArtifact>> Obtain(
      const PartitionView& view, const WindowFunctionCall& call, bool dense) {
    if (view.cache == nullptr) {
      RankArtifact built = Build(view, call, dense);
      if (Status stop = CheckStop(); !stop.ok()) return stop;
      return std::make_shared<const RankArtifact>(std::move(built));
    }
    const std::string key =
        view.cache_prefix + "|rank" +
        CallCacheKey(view, call, /*drop_null_args=*/false) +
        (dense ? "|d" : "|u") + "|w" + std::to_string(sizeof(Index));
    return view.cache->GetOrBuild<RankArtifact>(
        key, [&]() -> StatusOr<mst::TreeCache::Built<RankArtifact>> {
          RankArtifact built = Build(view, call, dense);
          if (Status stop = CheckStop(); !stop.ok()) return stop;
          const size_t bytes = built.tree.MemoryUsageBytes() +
                               built.remap.ApproxBytes() +
                               built.codes.capacity() * sizeof(Index);
          return mst::TreeCache::Built<RankArtifact>{
              std::make_shared<const RankArtifact>(std::move(built)), bytes};
        });
  }
};

/// Shared machinery of the MST-based rank functions (§4.4).
///
/// The function-level ORDER BY is preprocessed into integer codes over all
/// partition positions (Fig. 8): dense codes for RANK / CUME_DIST (peers
/// share a code), unique codes for ROW_NUMBER / NTILE (ties broken by
/// position). The tree is built over the codes of the FILTER-surviving
/// positions; the current row's own code works as the query threshold even
/// when the row itself is filtered out.
template <typename Index>
Status EvalRankT(const PartitionView& view, const WindowFunctionCall& call,
                 Column* out) {
  const size_t n = view.size();
  const bool dense = call.kind == WindowFunctionKind::kRank ||
                     call.kind == WindowFunctionKind::kPercentRank ||
                     call.kind == WindowFunctionKind::kCumeDist;
  StatusOr<std::shared_ptr<const RankArtifact<Index>>> artifact_or =
      RankArtifact<Index>::Obtain(view, call, dense);
  if (!artifact_or.ok()) return artifact_or.status();
  const IndexRemap& remap = (*artifact_or)->remap;
  const std::vector<Index>& codes = (*artifact_or)->codes;
  const MergeSortTree<Index>& tree = (*artifact_or)->tree;

  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          size_t frame_rows = 0;
          for (size_t r = 0; r < num_ranges; ++r) {
            frame_rows += ranges[r].size();
          }
          auto count_less = [&](Index threshold) {
            size_t count = 0;
            for (size_t r = 0; r < num_ranges; ++r) {
              count +=
                  tree.CountLess(ranges[r].begin, ranges[r].end, threshold);
            }
            return count;
          };
          switch (call.kind) {
            case WindowFunctionKind::kRank:
              out->SetInt64(row,
                            static_cast<int64_t>(1 + count_less(codes[i])));
              break;
            case WindowFunctionKind::kRowNumber:
              out->SetInt64(row,
                            static_cast<int64_t>(1 + count_less(codes[i])));
              break;
            case WindowFunctionKind::kPercentRank: {
              if (frame_rows <= 1) {
                out->SetDouble(row, 0.0);
              } else {
                const size_t rank = 1 + count_less(codes[i]);
                out->SetDouble(row, static_cast<double>(rank - 1) /
                                        static_cast<double>(frame_rows - 1));
              }
              break;
            }
            case WindowFunctionKind::kCumeDist: {
              if (frame_rows == 0) {
                out->SetNull(row);
              } else {
                const size_t leq =
                    count_less(static_cast<Index>(codes[i] + 1));
                out->SetDouble(row, static_cast<double>(leq) /
                                        static_cast<double>(frame_rows));
              }
              break;
            }
            case WindowFunctionKind::kNtile: {
              if (frame_rows == 0) {
                out->SetNull(row);
                break;
              }
              const size_t buckets = static_cast<size_t>(call.param);
              // 0-based index of the current row among the frame rows in
              // function order (insertion position when the row itself is
              // outside the frame).
              size_t rn = count_less(codes[i]);
              if (rn >= frame_rows) rn = frame_rows - 1;
              int64_t tile;
              if (buckets >= frame_rows) {
                tile = static_cast<int64_t>(rn) + 1;
              } else {
                // SQL NTILE: the first (frame_rows % buckets) buckets get
                // one extra row.
                const size_t big = frame_rows % buckets;
                const size_t small_size = frame_rows / buckets;
                const size_t big_total = big * (small_size + 1);
                if (rn < big_total) {
                  tile = static_cast<int64_t>(rn / (small_size + 1)) + 1;
                } else {
                  tile = static_cast<int64_t>(big +
                                              (rn - big_total) / small_size) +
                         1;
                }
              }
              out->SetInt64(row, tile);
              break;
            }
            default:
              HWF_CHECK_MSG(false, "not a rank function");
          }
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

}  // namespace
}  // namespace internal_window

Status EvalRankFunction(const PartitionView& view,
                        const WindowFunctionCall& call, Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalRankT<Index>(view, call, out);
      });
}

}  // namespace hwf
