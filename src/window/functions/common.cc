#include "window/functions/common.h"

#include <cstring>

namespace hwf {
namespace internal_window {

uint64_t EncodeInt64Key(int64_t value, bool ascending) {
  const uint64_t encoded = static_cast<uint64_t>(value) ^ (uint64_t{1} << 63);
  return ascending ? encoded : ~encoded;
}

uint64_t EncodeDoubleKey(double value, bool ascending) {
  if (value == 0.0) value = 0.0;  // Canonicalize -0.0 (SQL: -0.0 = 0.0).
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint64_t encoded =
      (bits & (uint64_t{1} << 63)) ? ~bits : (bits | (uint64_t{1} << 63));
  return ascending ? encoded : ~encoded;
}

uint64_t ModeTieKey(const Column& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt64:
      return EncodeInt64Key(column.GetInt64(row), /*ascending=*/true);
    case DataType::kDouble:
      return EncodeDoubleKey(column.GetDouble(row), /*ascending=*/true);
    case DataType::kString:
      return column.Hash(row);
  }
  return 0;
}

}  // namespace internal_window
}  // namespace hwf
