#include <cstdint>
#include <vector>

#include "mst/permutation.h"
#include "window/evaluator.h"
#include "window/functions/selection.h"

namespace hwf {
namespace internal_window {
namespace {

/// Framed LEAD / LAG (§4.6): (1) compute the current row's row number
/// within the frame under the function order, (2) offset it, (3) select the
/// row at the adjusted position, (4) evaluate the argument there.
///
/// Both steps use the same selection tree: the row number is the count of
/// tree positions before the current row's function-order rank whose key
/// (filtered partition position) lies in the frame, and the selection is a
/// Select on the same tree. When the current row itself is dropped by the
/// FILTER clause or IGNORE NULLS, its rank is undefined and the result is
/// NULL (documented deviation; standard SQL has no FILTER on lead/lag).
template <typename Index>
Status EvalLeadLagT(const PartitionView& view, const WindowFunctionCall& call,
                    Column* out) {
  const SelectionTree<Index> sel = SelectionTree<Index>::Build(
      view, call, /*drop_null_args=*/call.ignore_nulls);
  const Column& arg = view.col(*call.argument);
  const bool is_lead = call.kind == WindowFunctionKind::kLead;

  // Function-order rank of every filtered position: the inverse of the
  // permutation the tree was built over.
  const size_t m = sel.remap.num_surviving();
  std::vector<size_t> rank_of_filtered(m);
  {
    // Bulk-copy the permutation (level 0 of the tree): page-at-a-time when
    // the level was evicted under a memory budget.
    std::vector<Index> perm(m);
    sel.tree.CopyKeys(0, m, perm.data());
    for (size_t j = 0; j < m; ++j) {
      rank_of_filtered[static_cast<size_t>(perm[j])] = j;
    }
  }

  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        KeyRange<Index> ranges[FrameRanges::kMaxRanges];
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          if (!sel.remap.Included(i)) {
            out->SetNull(row);
            continue;
          }
          size_t total = 0;
          const size_t num_ranges =
              sel.MapKeyRanges(view.frames[i], ranges, &total);
          if (total == 0) {
            out->SetNull(row);
            continue;
          }
          std::span<const KeyRange<Index>> span(ranges, num_ranges);
          // Frame rows strictly before the current row in function order.
          const size_t own_rank = rank_of_filtered[sel.remap.ToFiltered(i)];
          size_t before = 0;
          for (size_t r = 0; r < num_ranges; ++r) {
            before += sel.tree.CountInKeyRange(0, own_rank, ranges[r].lo,
                                               ranges[r].hi);
          }
          // If the current row is in the frame, `before` is its 0-based
          // index among the frame rows; otherwise it is the insertion
          // position, which generalizes the semantics naturally.
          const int64_t target = is_lead
                                     ? static_cast<int64_t>(before) + call.param
                                     : static_cast<int64_t>(before) -
                                           call.param;
          if (target < 0 || target >= static_cast<int64_t>(total)) {
            out->SetNull(row);
            continue;
          }
          const size_t selected = view.rows[sel.SelectPosition(
              span, static_cast<size_t>(target))];
          if (arg.IsNull(selected)) {
            out->SetNull(row);
          } else {
            switch (out->type()) {
              case DataType::kInt64:
                out->SetInt64(row, arg.GetInt64(selected));
                break;
              case DataType::kDouble:
                out->SetDouble(row, arg.GetDouble(selected));
                break;
              case DataType::kString:
                out->SetString(row, arg.GetString(selected));
                break;
            }
          }
        }
      },
      *view.pool, view.options->morsel_size);
  return Status::OK();
}

}  // namespace
}  // namespace internal_window

Status EvalLeadLag(const PartitionView& view, const WindowFunctionCall& call,
                   Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalLeadLagT<Index>(view, call, out);
      });
}

}  // namespace hwf
