#include <algorithm>
#include <cstdint>
#include <vector>

#include "mst/permutation.h"
#include "obs/profile.h"
#include "window/evaluator.h"
#include "window/functions/selection.h"

namespace hwf {
namespace internal_window {
namespace {

/// Framed LEAD / LAG (§4.6): (1) compute the current row's row number
/// within the frame under the function order, (2) offset it, (3) select the
/// row at the adjusted position, (4) evaluate the argument there.
///
/// Both steps use the same selection tree: the row number is the count of
/// tree positions before the current row's function-order rank whose key
/// (filtered partition position) lies in the frame, and the selection is a
/// Select on the same tree. When the current row itself is dropped by the
/// FILTER clause or IGNORE NULLS, its rank is undefined and the result is
/// NULL (documented deviation; standard SQL has no FILTER on lead/lag).
template <typename Index>
Status EvalLeadLagT(const PartitionView& view, const WindowFunctionCall& call,
                    Column* out) {
  StatusOr<std::shared_ptr<const SelectionTree<Index>>> sel_or =
      SelectionTree<Index>::Obtain(view, call,
                                   /*drop_null_args=*/call.ignore_nulls);
  if (!sel_or.ok()) return sel_or.status();
  const SelectionTree<Index>& sel = **sel_or;
  const Column& arg = view.col(*call.argument);
  const bool is_lead = call.kind == WindowFunctionKind::kLead;

  // Function-order rank of every filtered position: the inverse of the
  // permutation the tree was built over.
  const size_t m = sel.remap.num_surviving();
  std::vector<size_t> rank_of_filtered(m);
  {
    // Bulk-copy the permutation (level 0 of the tree): page-at-a-time when
    // the level was evicted under a memory budget. Inverting it is
    // preprocessing, not probing.
    obs::ScopedPhaseTimer timer(view.options->profile,
                                obs::ProfilePhase::kPreprocess);
    std::vector<Index> perm(m);
    sel.tree.CopyKeys(0, m, perm.data());
    for (size_t j = 0; j < m; ++j) {
      rank_of_filtered[static_cast<size_t>(perm[j])] = j;
    }
  }

  const size_t batch = view.options->tree.probe_batch_size;
  auto emit = [&](size_t row, size_t selected) {
    if (arg.IsNull(selected)) {
      out->SetNull(row);
      return;
    }
    switch (out->type()) {
      case DataType::kInt64:
        out->SetInt64(row, arg.GetInt64(selected));
        break;
      case DataType::kDouble:
        out->SetDouble(row, arg.GetDouble(selected));
        break;
      case DataType::kString:
        out->SetString(row, arg.GetString(selected));
        break;
    }
  };

  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        KeyRange<Index> ranges[FrameRanges::kMaxRanges];
        if (batch > 0) {
          // Batched path, two kernel passes per chunk: first the row-number
          // counts (a CountLess pair per non-empty key range), then the
          // offset selects for rows whose target lands inside the frame.
          using Tree = MergeSortTree<Index>;
          struct RowTask {
            size_t row;
            size_t total;
            uint32_t range_begin;
            uint32_t num_ranges;
            uint32_t count_begin;
            uint32_t num_pairs;
          };
          std::vector<KeyRange<Index>> range_pool;
          std::vector<typename Tree::CountQuery> count_queries;
          std::vector<RowTask> tasks;
          std::vector<size_t> counts;
          std::vector<typename Tree::SelectQuery> selects;
          std::vector<size_t> select_rows;
          std::vector<size_t> selected;
          for (size_t chunk = lo; chunk < hi; chunk += kProbeChunkRows) {
            const size_t chunk_end = std::min(hi, chunk + kProbeChunkRows);
            range_pool.clear();
            count_queries.clear();
            tasks.clear();
            selects.clear();
            select_rows.clear();
            for (size_t i = chunk; i < chunk_end; ++i) {
              const size_t row = view.rows[i];
              if (!sel.remap.Included(i)) {
                out->SetNull(row);
                continue;
              }
              size_t total = 0;
              const size_t num_ranges =
                  sel.MapKeyRanges(view.frames[i], ranges, &total);
              if (total == 0) {
                out->SetNull(row);
                continue;
              }
              const size_t own_rank =
                  rank_of_filtered[sel.remap.ToFiltered(i)];
              RowTask task{row,
                           total,
                           static_cast<uint32_t>(range_pool.size()),
                           static_cast<uint32_t>(num_ranges),
                           static_cast<uint32_t>(count_queries.size()),
                           0};
              range_pool.insert(range_pool.end(), ranges, ranges + num_ranges);
              for (size_t r = 0; r < num_ranges; ++r) {
                if (ranges[r].lo >= ranges[r].hi) continue;  // counts 0
                count_queries.push_back({0, own_rank, ranges[r].hi});
                count_queries.push_back({0, own_rank, ranges[r].lo});
                ++task.num_pairs;
              }
              tasks.push_back(task);
            }
            counts.resize(count_queries.size());
            sel.tree.CountLessBatch(count_queries, batch, counts.data());
            for (const RowTask& task : tasks) {
              size_t before = 0;
              for (size_t p = 0; p < task.num_pairs; ++p) {
                before += counts[task.count_begin + 2 * p] -
                          counts[task.count_begin + 2 * p + 1];
              }
              const int64_t target =
                  is_lead ? static_cast<int64_t>(before) + call.param
                          : static_cast<int64_t>(before) - call.param;
              if (target < 0 || target >= static_cast<int64_t>(task.total)) {
                out->SetNull(task.row);
                continue;
              }
              selects.push_back({task.range_begin, task.num_ranges,
                                 static_cast<size_t>(target)});
              select_rows.push_back(task.row);
            }
            selected.resize(selects.size());
            sel.SelectPositionsBatch(range_pool, selects, batch,
                                     selected.data());
            GatherRowsWithPrefetch(view.rows.data(), selected.data(),
                                   selected.size(), selected.data());
            for (size_t q = 0; q < selects.size(); ++q) {
              if (q + kGatherLookahead < selects.size()) {
                arg.PrefetchRow(selected[q + kGatherLookahead]);
              }
              emit(select_rows[q], selected[q]);
            }
          }
          return;
        }
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          if (!sel.remap.Included(i)) {
            out->SetNull(row);
            continue;
          }
          size_t total = 0;
          const size_t num_ranges =
              sel.MapKeyRanges(view.frames[i], ranges, &total);
          if (total == 0) {
            out->SetNull(row);
            continue;
          }
          std::span<const KeyRange<Index>> span(ranges, num_ranges);
          // Frame rows strictly before the current row in function order.
          const size_t own_rank = rank_of_filtered[sel.remap.ToFiltered(i)];
          size_t before = 0;
          for (size_t r = 0; r < num_ranges; ++r) {
            before += sel.tree.CountInKeyRange(0, own_rank, ranges[r].lo,
                                               ranges[r].hi);
          }
          // If the current row is in the frame, `before` is its 0-based
          // index among the frame rows; otherwise it is the insertion
          // position, which generalizes the semantics naturally.
          const int64_t target = is_lead
                                     ? static_cast<int64_t>(before) + call.param
                                     : static_cast<int64_t>(before) -
                                           call.param;
          if (target < 0 || target >= static_cast<int64_t>(total)) {
            out->SetNull(row);
            continue;
          }
          const size_t selected = view.rows[sel.SelectPosition(
              span, static_cast<size_t>(target))];
          emit(row, selected);
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

}  // namespace
}  // namespace internal_window

Status EvalLeadLag(const PartitionView& view, const WindowFunctionCall& call,
                   Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalLeadLagT<Index>(view, call, out);
      });
}

}  // namespace hwf
