#ifndef HWF_WINDOW_FUNCTIONS_SELECTION_H_
#define HWF_WINDOW_FUNCTIONS_SELECTION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "mst/merge_sort_tree.h"
#include "mst/permutation.h"
#include "mst/remap.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace internal_window {

/// Shared machinery for percentiles, value functions and LEAD/LAG (§4.5,
/// §4.6): a merge sort tree over the permutation array (Fig. 6).
///
/// Tree positions are the function-order ranks (0 = smallest under the
/// function's ORDER BY); keys are filtered partition positions. Selecting
/// the i-th tree entry whose key falls into the frame's position ranges
/// yields the i-th frame row in function order.
template <typename Index>
struct SelectionTree {
  IndexRemap remap;
  MergeSortTree<Index> tree;

  static SelectionTree Build(const PartitionView& view,
                             const WindowFunctionCall& call,
                             bool drop_null_args) {
    SelectionTree result;
    result.remap = BuildCallRemap(view, call, drop_null_args);
    const size_t m = result.remap.num_surviving();
    const std::vector<SortKey> order = EffectiveOrder(*view.spec, call);
    PositionLess less{&view, order};
    // Compare filtered positions by their underlying rows.
    std::vector<Index> perm = ComputePermutation<Index>(
        m,
        [&](size_t a, size_t b) {
          return less(result.remap.ToOriginal(a), result.remap.ToOriginal(b));
        },
        *view.pool);
    result.tree = MergeSortTree<Index>::Build(std::move(perm),
                                              view.options->tree, *view.pool);
    return result;
  }

  /// Maps the frame of position i to filtered key ranges. Returns the
  /// number of ranges; `*total` receives the number of qualifying rows.
  size_t MapKeyRanges(const FrameRanges& frames, KeyRange<Index>* out,
                      size_t* total) const {
    RowRange mapped[FrameRanges::kMaxRanges];
    const size_t count = MapRangesToFiltered(frames, remap, mapped);
    size_t rows = 0;
    for (size_t r = 0; r < count; ++r) {
      out[r] = KeyRange<Index>{static_cast<Index>(mapped[r].begin),
                               static_cast<Index>(mapped[r].end)};
      rows += mapped[r].size();
    }
    *total = rows;
    return count;
  }

  /// The original partition position of the idx-th (0-based, function
  /// order) frame row. Requires idx < total.
  size_t SelectPosition(std::span<const KeyRange<Index>> ranges,
                        size_t idx) const {
    const size_t tree_pos = tree.Select(ranges, idx);
    const size_t filtered_pos = static_cast<size_t>(tree.KeyAt(tree_pos));
    return remap.ToOriginal(filtered_pos);
  }
};

}  // namespace internal_window
}  // namespace hwf

#endif  // HWF_WINDOW_FUNCTIONS_SELECTION_H_
