#ifndef HWF_WINDOW_FUNCTIONS_SELECTION_H_
#define HWF_WINDOW_FUNCTIONS_SELECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"
#include "mst/merge_sort_tree.h"
#include "mst/permutation.h"
#include "mst/preprocess.h"
#include "mst/remap.h"
#include "mst/tree_cache.h"
#include "obs/profile.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace internal_window {

/// Shared machinery for percentiles, value functions and LEAD/LAG (§4.5,
/// §4.6): a merge sort tree over the permutation array (Fig. 6).
///
/// Tree positions are the function-order ranks (0 = smallest under the
/// function's ORDER BY); keys are filtered partition positions. Selecting
/// the i-th tree entry whose key falls into the frame's position ranges
/// yields the i-th frame row in function order.
template <typename Index>
struct SelectionTree {
  IndexRemap remap;
  MergeSortTree<Index> tree;

  static SelectionTree Build(const PartitionView& view,
                             const WindowFunctionCall& call,
                             bool drop_null_args) {
    SelectionTree result;
    result.remap = BuildCallRemap(view, call, drop_null_args);
    const size_t m = result.remap.num_surviving();
    const std::vector<SortKey> order = EffectiveOrder(*view.spec, call);
    PositionLess less{&view, order};
    // Compare filtered positions by their underlying rows. The permutation
    // sort is Algorithm 1 preprocessing, charged to kPreprocess so kProbe
    // measures query answering only.
    std::vector<Index> perm;
    {
      obs::ScopedPhaseTimer timer(view.options->profile,
                                  obs::ProfilePhase::kPreprocess);
      if (view.options->tree.fuse_preprocess && less.encoded()) {
        PreprocessRequest req;
        req.want_perm = true;
        PreprocessResult<Index> pre = PreprocessOrderKeys<Index>(
            m,
            [&](size_t j) {
              return less.EncodedKey(result.remap.ToOriginal(j));
            },
            req, *view.pool, view.options->tree.use_ovc,
            view.options->profile);
        perm = std::move(pre.perm);
      } else {
        obs::ScopedPreprocessStepTimer legacy_timer(
            view.options->profile, obs::PreprocessStep::kLegacy);
        perm = ComputePermutation<Index>(
            m,
            [&](size_t a, size_t b) {
              return less(result.remap.ToOriginal(a),
                          result.remap.ToOriginal(b));
            },
            *view.pool);
      }
    }
    result.tree = MergeSortTree<Index>::Build(std::move(perm),
                                              view.options->tree, *view.pool);
    return result;
  }

  /// Build, routed through the partition's cross-query cache when one is
  /// attached. The tree depends only on the remap inputs (FILTER, NULL
  /// dropping), the effective order and the tree build parameters — all
  /// serialized into the key — so every call with the same configuration
  /// shares one tree, across functions and across queries. Returns a non-OK
  /// Status when the build was cut short by cancellation (a partially-built
  /// tree must never be probed or cached: its cascade offsets are garbage).
  static StatusOr<std::shared_ptr<const SelectionTree>> Obtain(
      const PartitionView& view, const WindowFunctionCall& call,
      bool drop_null_args) {
    if (view.cache == nullptr) {
      SelectionTree built = Build(view, call, drop_null_args);
      if (Status stop = CheckStop(); !stop.ok()) return stop;
      return std::make_shared<const SelectionTree>(std::move(built));
    }
    const std::string key = view.cache_prefix + "|sel" +
                            CallCacheKey(view, call, drop_null_args) + "|w" +
                            std::to_string(sizeof(Index));
    return view.cache->GetOrBuild<SelectionTree>(
        key, [&]() -> StatusOr<mst::TreeCache::Built<SelectionTree>> {
          SelectionTree built = Build(view, call, drop_null_args);
          if (Status stop = CheckStop(); !stop.ok()) return stop;
          const size_t bytes =
              built.tree.MemoryUsageBytes() + built.remap.ApproxBytes();
          return mst::TreeCache::Built<SelectionTree>{
              std::make_shared<const SelectionTree>(std::move(built)), bytes};
        });
  }

  /// Maps the frame of position i to filtered key ranges. Returns the
  /// number of ranges; `*total` receives the number of qualifying rows.
  size_t MapKeyRanges(const FrameRanges& frames, KeyRange<Index>* out,
                      size_t* total) const {
    RowRange mapped[FrameRanges::kMaxRanges];
    const size_t count = MapRangesToFiltered(frames, remap, mapped);
    size_t rows = 0;
    for (size_t r = 0; r < count; ++r) {
      out[r] = KeyRange<Index>{static_cast<Index>(mapped[r].begin),
                               static_cast<Index>(mapped[r].end)};
      rows += mapped[r].size();
    }
    *total = rows;
    return count;
  }

  /// The original partition position of the idx-th (0-based, function
  /// order) frame row. Requires idx < total. `cursor` (optional) caches the
  /// top-level descent state across calls with the same ranges, so a second
  /// select on the same frame skips its boundary searches.
  size_t SelectPosition(
      std::span<const KeyRange<Index>> ranges, size_t idx,
      typename MergeSortTree<Index>::ProbeCursor* cursor = nullptr) const {
    const size_t tree_pos = tree.Select(ranges, idx, cursor);
    const size_t filtered_pos = static_cast<size_t>(tree.KeyAt(tree_pos));
    return remap.ToOriginal(filtered_pos);
  }

  using SelectQuery = typename MergeSortTree<Index>::SelectQuery;

  /// Batched SelectPosition: answers `queries` (each referencing a slice of
  /// `range_pool`) through the prefetch-pipelined probe kernel with
  /// `group_size` queries in flight, then maps every selected tree position
  /// back to an original partition position in `out`. Results are identical
  /// to calling SelectPosition per query.
  void SelectPositionsBatch(std::span<const KeyRange<Index>> range_pool,
                            std::span<const SelectQuery> queries,
                            size_t group_size, size_t* out) const {
    tree.SelectBatch(range_pool, queries, group_size, out);
    // Mapping the answered positions back is two more dependent random
    // reads per query (the level-0 key, then the survivor table); pipeline
    // each hop with a prefetch distance so those misses overlap too.
    const size_t n = queries.size();
    for (size_t q = 0; q < n; ++q) {
      if (q + kGatherLookahead < n) tree.PrefetchKey(out[q + kGatherLookahead]);
      out[q] = static_cast<size_t>(tree.KeyAt(out[q]));
    }
    if (remap.is_identity()) return;
    for (size_t q = 0; q < n; ++q) {
      if (q + kGatherLookahead < n) {
        remap.PrefetchToOriginal(out[q + kGatherLookahead]);
      }
      out[q] = remap.ToOriginal(out[q]);
    }
  }
};

}  // namespace internal_window
}  // namespace hwf

#endif  // HWF_WINDOW_FUNCTIONS_SELECTION_H_
