#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/segment_tree.h"
#include "common/stop_token.h"
#include "mst/aggregate_ops.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace internal_window {
namespace {

/// Distributive / algebraic framed aggregates via segment trees (Leis et
/// al. [27]) — the non-holistic substrate the paper builds on. COUNT needs
/// no tree at all: it is the number of surviving frame rows.
template <typename Ops, typename GetInput, typename Write>
Status EvalSegmentAggregate(const PartitionView& view,
                            const WindowFunctionCall& call,
                            GetInput&& get_input, Write&& write) {
  using Input = typename Ops::Input;
  using State = typename Ops::State;
  const IndexRemap remap = BuildCallRemap(view, call, /*drop_null_args=*/true);
  const size_t m = remap.num_surviving();
  std::vector<Input> inputs(m);
  for (size_t j = 0; j < m; ++j) inputs[j] = get_input(remap.ToOriginal(j));
  const SegmentTree<Ops> tree =
      SegmentTree<Ops>::Build(std::span<const Input>(inputs));

  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        for (size_t i = lo; i < hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          std::optional<State> state;
          for (size_t r = 0; r < num_ranges; ++r) {
            std::optional<State> piece =
                tree.Aggregate(ranges[r].begin, ranges[r].end);
            if (piece.has_value()) {
              if (state.has_value()) {
                Ops::Merge(*state, *piece);
              } else {
                state = *piece;
              }
            }
          }
          write(view.rows[i], state);
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

Status EvalCount(const PartitionView& view, const WindowFunctionCall& call,
                 Column* out, bool count_star) {
  const IndexRemap remap =
      BuildCallRemap(view, call, /*drop_null_args=*/!count_star);
  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        RowRange ranges[FrameRanges::kMaxRanges];
        for (size_t i = lo; i < hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, ranges);
          size_t count = 0;
          for (size_t r = 0; r < num_ranges; ++r) count += ranges[r].size();
          out->SetInt64(view.rows[i], static_cast<int64_t>(count));
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

}  // namespace
}  // namespace internal_window

Status EvalDistributive(const PartitionView& view,
                        const WindowFunctionCall& call, Column* out) {
  using internal_window::EvalCount;
  using internal_window::EvalSegmentAggregate;

  if (call.kind == WindowFunctionKind::kCountStar) {
    return EvalCount(view, call, out, /*count_star=*/true);
  }
  if (call.kind == WindowFunctionKind::kCount) {
    return EvalCount(view, call, out, /*count_star=*/false);
  }

  const Column& arg = view.col(*call.argument);
  const bool arg_is_int = arg.type() == DataType::kInt64;
  auto int_input = [&](size_t pos) { return arg.GetInt64(view.rows[pos]); };
  auto dbl_input = [&](size_t pos) { return arg.GetNumeric(view.rows[pos]); };
  auto write_numeric = [&](size_t row, const std::optional<double>& state) {
    if (!state.has_value()) {
      out->SetNull(row);
    } else if (out->type() == DataType::kInt64) {
      out->SetInt64(row, static_cast<int64_t>(*state));
    } else {
      out->SetDouble(row, *state);
    }
  };

  switch (call.kind) {
    case WindowFunctionKind::kSum:
      if (arg_is_int) {
        return EvalSegmentAggregate<SumInt64Ops>(
            view, call, int_input,
            [&](size_t row, const std::optional<int64_t>& state) {
              if (state.has_value()) {
                out->SetInt64(row, *state);
              } else {
                out->SetNull(row);
              }
            });
      }
      return EvalSegmentAggregate<SumOps>(
          view, call, dbl_input,
          [&](size_t row, const std::optional<double>& state) {
            if (state.has_value()) {
              out->SetDouble(row, *state);
            } else {
              out->SetNull(row);
            }
          });
    case WindowFunctionKind::kMin:
      return EvalSegmentAggregate<MinOps>(view, call, dbl_input,
                                          write_numeric);
    case WindowFunctionKind::kMax:
      return EvalSegmentAggregate<MaxOps>(view, call, dbl_input,
                                          write_numeric);
    case WindowFunctionKind::kAvg:
      return EvalSegmentAggregate<AvgOps>(
          view, call, dbl_input,
          [&](size_t row, const std::optional<AvgOps::State>& state) {
            if (state.has_value() && state->count > 0) {
              out->SetDouble(row,
                             state->sum / static_cast<double>(state->count));
            } else {
              out->SetNull(row);
            }
          });
    default:
      return Status::Internal("not a distributive aggregate");
  }
}

}  // namespace hwf
