#include <cmath>
#include <cstdint>

#include "window/evaluator.h"
#include "window/functions/selection.h"

namespace hwf {
namespace internal_window {
namespace {

/// Framed percentiles (§4.5). PERCENTILE_DISC(f) returns the first value
/// whose cumulative distribution reaches f (an actual input value);
/// PERCENTILE_CONT(f) linearly interpolates between the two neighboring
/// values; MEDIAN is PERCENTILE_DISC(0.5). NULL arguments are always
/// ignored, matching the SQL aggregate semantics.
template <typename Index>
Status EvalPercentileT(const PartitionView& view,
                       const WindowFunctionCall& call, Column* out) {
  const SelectionTree<Index> sel =
      SelectionTree<Index>::Build(view, call, /*drop_null_args=*/true);
  const Column& arg = view.col(*call.argument);
  const bool cont = call.kind == WindowFunctionKind::kPercentileCont;
  const double fraction =
      call.kind == WindowFunctionKind::kMedian ? 0.5 : call.fraction;

  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        KeyRange<Index> ranges[FrameRanges::kMaxRanges];
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          size_t total = 0;
          const size_t num_ranges =
              sel.MapKeyRanges(view.frames[i], ranges, &total);
          if (total == 0) {
            out->SetNull(row);
            continue;
          }
          std::span<const KeyRange<Index>> span(ranges, num_ranges);
          if (!cont) {
            // PERCENTILE_DISC: ceil(f·N) - 1, clamped into [0, N).
            double pos = std::ceil(fraction * static_cast<double>(total)) - 1;
            size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
            if (idx >= total) idx = total - 1;
            const size_t selected =
                view.rows[sel.SelectPosition(span, idx)];
            if (out->type() == DataType::kInt64) {
              out->SetInt64(row, arg.GetInt64(selected));
            } else {
              out->SetDouble(row, arg.GetNumeric(selected));
            }
          } else {
            // PERCENTILE_CONT: interpolate at f·(N-1).
            const double pos = fraction * static_cast<double>(total - 1);
            const size_t lo_idx = static_cast<size_t>(std::floor(pos));
            const size_t hi_idx = static_cast<size_t>(std::ceil(pos));
            const double lo_val = arg.GetNumeric(
                view.rows[sel.SelectPosition(span, lo_idx)]);
            if (hi_idx == lo_idx) {
              out->SetDouble(row, lo_val);
            } else {
              const double hi_val = arg.GetNumeric(
                  view.rows[sel.SelectPosition(span, hi_idx)]);
              const double t = pos - static_cast<double>(lo_idx);
              out->SetDouble(row, lo_val + t * (hi_val - lo_val));
            }
          }
        }
      },
      *view.pool, view.options->morsel_size);
  return Status::OK();
}

}  // namespace
}  // namespace internal_window

Status EvalPercentile(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalPercentileT<Index>(view, call, out);
      });
}

}  // namespace hwf
