#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ingest/merged_probe.h"
#include "window/evaluator.h"
#include "window/functions/selection.h"

namespace hwf {
namespace internal_window {
namespace {

/// Merged-cursor percentile evaluation for mixed base+delta partitions
/// (streaming ingest): probes the cached base tree plus a small delta
/// side-tree instead of rebuilding over the full partition. Always the
/// scalar loop — the batched probe kernel pipelines descents within one
/// tree, while the merged cursor's rank search alternates between two.
/// Output is bit-identical to the rebuild path (see MergedSelection).
template <typename Index>
Status EvalPercentileMergedT(const PartitionView& view,
                             const WindowFunctionCall& call, Column* out,
                             const ingest::MergedSelection<Index>& sel) {
  const Column& arg = view.col(*call.argument);
  const bool cont = call.kind == WindowFunctionKind::kPercentileCont;
  const double fraction =
      call.kind == WindowFunctionKind::kMedian ? 0.5 : call.fraction;
  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        typename ingest::MergedSelection<Index>::Ranges ranges;
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          size_t total = 0;
          sel.MapKeyRanges(view.frames[i], &ranges, &total);
          if (total == 0) {
            out->SetNull(row);
            continue;
          }
          if (!cont) {
            double pos = std::ceil(fraction * static_cast<double>(total)) - 1;
            size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
            if (idx >= total) idx = total - 1;
            const size_t selected = view.rows[sel.SelectPosition(ranges, idx)];
            if (out->type() == DataType::kInt64) {
              out->SetInt64(row, arg.GetInt64(selected));
            } else {
              out->SetDouble(row, arg.GetNumeric(selected));
            }
          } else {
            const double pos = fraction * static_cast<double>(total - 1);
            const size_t lo_idx = static_cast<size_t>(std::floor(pos));
            const size_t hi_idx = static_cast<size_t>(std::ceil(pos));
            const double lo_val =
                arg.GetNumeric(view.rows[sel.SelectPosition(ranges, lo_idx)]);
            if (hi_idx == lo_idx) {
              out->SetDouble(row, lo_val);
            } else {
              const double hi_val = arg.GetNumeric(
                  view.rows[sel.SelectPosition(ranges, hi_idx)]);
              const double t = pos - static_cast<double>(lo_idx);
              out->SetDouble(row, lo_val + t * (hi_val - lo_val));
            }
          }
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

/// Framed percentiles (§4.5). PERCENTILE_DISC(f) returns the first value
/// whose cumulative distribution reaches f (an actual input value);
/// PERCENTILE_CONT(f) linearly interpolates between the two neighboring
/// values; MEDIAN is PERCENTILE_DISC(0.5). NULL arguments are always
/// ignored, matching the SQL aggregate semantics.
template <typename Index>
Status EvalPercentileT(const PartitionView& view,
                       const WindowFunctionCall& call, Column* out) {
  if (view.delta != nullptr) {
    StatusOr<std::shared_ptr<const ingest::MergedSelection<Index>>> merged =
        ingest::MergedSelection<Index>::TryObtain(view, call,
                                                  /*drop_null_args=*/true);
    if (!merged.ok()) return merged.status();
    if (*merged != nullptr) {
      return EvalPercentileMergedT<Index>(view, call, out, **merged);
    }
    // Cold base tree or unsupported ordering: fall through to the full
    // rebuild, which caches under the combined content key.
  }
  StatusOr<std::shared_ptr<const SelectionTree<Index>>> sel_or =
      SelectionTree<Index>::Obtain(view, call, /*drop_null_args=*/true);
  if (!sel_or.ok()) return sel_or.status();
  const SelectionTree<Index>& sel = **sel_or;
  const Column& arg = view.col(*call.argument);
  const bool cont = call.kind == WindowFunctionKind::kPercentileCont;
  const double fraction =
      call.kind == WindowFunctionKind::kMedian ? 0.5 : call.fraction;

  const size_t batch = view.options->tree.probe_batch_size;
  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        KeyRange<Index> ranges[FrameRanges::kMaxRanges];
        if (batch > 0) {
          // Batched path: gather a chunk of rows' percentile selects, answer
          // them in one kernel pass, then emit with the scalar output logic.
          struct RowTask {
            size_t row;
            uint32_t first_query;
            uint8_t num_queries;
            double pos;  // CONT interpolation position
          };
          std::vector<KeyRange<Index>> range_pool;
          std::vector<typename SelectionTree<Index>::SelectQuery> queries;
          std::vector<RowTask> tasks;
          std::vector<size_t> selected;
          for (size_t chunk = lo; chunk < hi; chunk += kProbeChunkRows) {
            const size_t chunk_end = std::min(hi, chunk + kProbeChunkRows);
            range_pool.clear();
            queries.clear();
            tasks.clear();
            for (size_t i = chunk; i < chunk_end; ++i) {
              const size_t row = view.rows[i];
              size_t total = 0;
              const size_t num_ranges =
                  sel.MapKeyRanges(view.frames[i], ranges, &total);
              if (total == 0) {
                out->SetNull(row);
                continue;
              }
              const uint32_t range_begin =
                  static_cast<uint32_t>(range_pool.size());
              range_pool.insert(range_pool.end(), ranges, ranges + num_ranges);
              RowTask task{row, static_cast<uint32_t>(queries.size()), 1, 0.0};
              if (!cont) {
                double pos =
                    std::ceil(fraction * static_cast<double>(total)) - 1;
                size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
                if (idx >= total) idx = total - 1;
                queries.push_back({range_begin,
                                   static_cast<uint32_t>(num_ranges), idx});
              } else {
                const double pos = fraction * static_cast<double>(total - 1);
                const size_t lo_idx = static_cast<size_t>(std::floor(pos));
                const size_t hi_idx = static_cast<size_t>(std::ceil(pos));
                task.pos = pos;
                queries.push_back({range_begin,
                                   static_cast<uint32_t>(num_ranges), lo_idx});
                if (hi_idx != lo_idx) {
                  queries.push_back({range_begin,
                                     static_cast<uint32_t>(num_ranges),
                                     hi_idx});
                  task.num_queries = 2;
                }
              }
              tasks.push_back(task);
            }
            selected.resize(queries.size());
            sel.SelectPositionsBatch(range_pool, queries, batch,
                                     selected.data());
            GatherRowsWithPrefetch(view.rows.data(), selected.data(),
                                   selected.size(), selected.data());
            for (size_t t = 0; t < tasks.size(); ++t) {
              if (t + kGatherLookahead < tasks.size()) {
                const RowTask& ahead = tasks[t + kGatherLookahead];
                arg.PrefetchRow(selected[ahead.first_query]);
                if (ahead.num_queries == 2) {
                  arg.PrefetchRow(selected[ahead.first_query + 1]);
                }
              }
              const RowTask& task = tasks[t];
              if (!cont) {
                const size_t sel_row = selected[task.first_query];
                if (out->type() == DataType::kInt64) {
                  out->SetInt64(task.row, arg.GetInt64(sel_row));
                } else {
                  out->SetDouble(task.row, arg.GetNumeric(sel_row));
                }
              } else {
                const double lo_val =
                    arg.GetNumeric(selected[task.first_query]);
                if (task.num_queries == 1) {
                  out->SetDouble(task.row, lo_val);
                } else {
                  const double hi_val =
                      arg.GetNumeric(selected[task.first_query + 1]);
                  const double t_frac = task.pos - std::floor(task.pos);
                  out->SetDouble(task.row,
                                 lo_val + t_frac * (hi_val - lo_val));
                }
              }
            }
          }
          return;
        }
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = view.rows[i];
          size_t total = 0;
          const size_t num_ranges =
              sel.MapKeyRanges(view.frames[i], ranges, &total);
          if (total == 0) {
            out->SetNull(row);
            continue;
          }
          std::span<const KeyRange<Index>> span(ranges, num_ranges);
          if (!cont) {
            // PERCENTILE_DISC: ceil(f·N) - 1, clamped into [0, N).
            double pos = std::ceil(fraction * static_cast<double>(total)) - 1;
            size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
            if (idx >= total) idx = total - 1;
            const size_t selected =
                view.rows[sel.SelectPosition(span, idx)];
            if (out->type() == DataType::kInt64) {
              out->SetInt64(row, arg.GetInt64(selected));
            } else {
              out->SetDouble(row, arg.GetNumeric(selected));
            }
          } else {
            // PERCENTILE_CONT: interpolate at f·(N-1). The cursor carries
            // the frame's boundary positions from the first select into the
            // second, avoiding a duplicate top-level descent setup.
            const double pos = fraction * static_cast<double>(total - 1);
            const size_t lo_idx = static_cast<size_t>(std::floor(pos));
            const size_t hi_idx = static_cast<size_t>(std::ceil(pos));
            typename MergeSortTree<Index>::ProbeCursor cursor;
            const double lo_val = arg.GetNumeric(
                view.rows[sel.SelectPosition(span, lo_idx, &cursor)]);
            if (hi_idx == lo_idx) {
              out->SetDouble(row, lo_val);
            } else {
              const double hi_val = arg.GetNumeric(
                  view.rows[sel.SelectPosition(span, hi_idx, &cursor)]);
              const double t = pos - static_cast<double>(lo_idx);
              out->SetDouble(row, lo_val + t * (hi_val - lo_val));
            }
          }
        }
      },
      *view.pool, view.options->morsel_size);
  return CheckStop();
}

}  // namespace
}  // namespace internal_window

Status EvalPercentile(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out) {
  return internal_window::DispatchIndexWidth(
      view.size(), view.options->force_index_width, [&](auto tag) {
        using Index = decltype(tag);
        return internal_window::EvalPercentileT<Index>(view, call, out);
      });
}

}  // namespace hwf
