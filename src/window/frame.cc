#include "window/frame.h"

#include <algorithm>
#include <cmath>

namespace hwf {

FrameResolver::FrameResolver(Inputs inputs) : in_(std::move(inputs)) {
  const FrameSpec& frame = in_.frame;
  const bool needs_peers =
      frame.exclusion == FrameExclusion::kGroup ||
      frame.exclusion == FrameExclusion::kTies ||
      frame.mode == FrameMode::kGroups ||
      (frame.mode == FrameMode::kRange &&
       (frame.begin.kind == FrameBoundKind::kCurrentRow ||
        frame.end.kind == FrameBoundKind::kCurrentRow ||
        frame.begin.kind == FrameBoundKind::kPreceding ||
        frame.begin.kind == FrameBoundKind::kFollowing ||
        frame.end.kind == FrameBoundKind::kPreceding ||
        frame.end.kind == FrameBoundKind::kFollowing));
  if (needs_peers) {
    HWF_CHECK_MSG(in_.peer_start.size() == in_.n && in_.peer_end.size() == in_.n,
                  "peer groups required for this frame specification");
  }
  if (frame.mode == FrameMode::kGroups) {
    HWF_CHECK_MSG(in_.group_index.size() == in_.n,
                  "group indexes required for GROUPS mode");
  }
}

int64_t FrameResolver::BeginOffset(size_t i) const {
  if (!in_.begin_offsets.empty()) {
    return std::max<int64_t>(0, in_.begin_offsets[i]);
  }
  return in_.frame.begin.offset;
}

int64_t FrameResolver::EndOffset(size_t i) const {
  if (!in_.end_offsets.empty()) {
    return std::max<int64_t>(0, in_.end_offsets[i]);
  }
  return in_.frame.end.offset;
}

double FrameResolver::BeginOffsetNumeric(size_t i) const {
  if (!in_.begin_offsets_numeric.empty()) {
    return std::max(0.0, in_.begin_offsets_numeric[i]);
  }
  return static_cast<double>(in_.frame.begin.offset);
}

double FrameResolver::EndOffsetNumeric(size_t i) const {
  if (!in_.end_offsets_numeric.empty()) {
    return std::max(0.0, in_.end_offsets_numeric[i]);
  }
  return static_cast<double>(in_.frame.end.offset);
}

size_t FrameResolver::LowerBoundKey(double bound) const {
  const double* keys = in_.range_keys.data();
  const double* first = keys + in_.nonnull_begin;
  const double* last = keys + in_.nonnull_end;
  if (in_.ascending) {
    return static_cast<size_t>(std::lower_bound(first, last, bound) - keys);
  }
  // Descending keys: first position with key <= bound.
  return static_cast<size_t>(
      std::lower_bound(first, last, bound,
                       [](double key, double b) { return key > b; }) -
      keys);
}

size_t FrameResolver::UpperBoundKey(double bound) const {
  const double* keys = in_.range_keys.data();
  const double* first = keys + in_.nonnull_begin;
  const double* last = keys + in_.nonnull_end;
  if (in_.ascending) {
    return static_cast<size_t>(std::upper_bound(first, last, bound) - keys);
  }
  // Descending keys: one past the last position with key >= bound.
  return static_cast<size_t>(
      std::upper_bound(first, last, bound,
                       [](double b, double key) { return key < b; }) -
      keys);
}

RowRange FrameResolver::ResolveBase(size_t i) const {
  const FrameSpec& frame = in_.frame;
  const int64_t n = static_cast<int64_t>(in_.n);
  const int64_t pos = static_cast<int64_t>(i);
  int64_t begin = 0;
  int64_t end = n;

  switch (frame.mode) {
    case FrameMode::kRows: {
      switch (frame.begin.kind) {
        case FrameBoundKind::kUnboundedPreceding:
          begin = 0;
          break;
        case FrameBoundKind::kPreceding:
          begin = pos - BeginOffset(i);
          break;
        case FrameBoundKind::kCurrentRow:
          begin = pos;
          break;
        case FrameBoundKind::kFollowing:
          begin = pos + BeginOffset(i);
          break;
        case FrameBoundKind::kUnboundedFollowing:
          HWF_CHECK_MSG(false, "frame start cannot be UNBOUNDED FOLLOWING");
      }
      switch (frame.end.kind) {
        case FrameBoundKind::kUnboundedPreceding:
          HWF_CHECK_MSG(false, "frame end cannot be UNBOUNDED PRECEDING");
          break;
        case FrameBoundKind::kPreceding:
          end = pos - EndOffset(i) + 1;
          break;
        case FrameBoundKind::kCurrentRow:
          end = pos + 1;
          break;
        case FrameBoundKind::kFollowing:
          end = pos + EndOffset(i) + 1;
          break;
        case FrameBoundKind::kUnboundedFollowing:
          end = n;
          break;
      }
      break;
    }
    case FrameMode::kRange: {
      const bool is_null = !in_.range_key_valid.empty() &&
                           in_.range_key_valid[i] == 0;
      const double key = in_.range_keys.empty() ? 0.0 : in_.range_keys[i];
      // SQL semantics: a row with a NULL key is a peer of every other NULL
      // row; offset bounds select exactly the peer group.
      switch (frame.begin.kind) {
        case FrameBoundKind::kUnboundedPreceding:
          begin = 0;
          break;
        case FrameBoundKind::kCurrentRow:
          begin = static_cast<int64_t>(in_.peer_start[i]);
          break;
        case FrameBoundKind::kPreceding:
          begin = is_null ? static_cast<int64_t>(in_.peer_start[i])
                          : static_cast<int64_t>(LowerBoundKey(
                                in_.ascending ? key - BeginOffsetNumeric(i)
                                              : key + BeginOffsetNumeric(i)));
          break;
        case FrameBoundKind::kFollowing:
          begin = is_null ? static_cast<int64_t>(in_.peer_start[i])
                          : static_cast<int64_t>(LowerBoundKey(
                                in_.ascending ? key + BeginOffsetNumeric(i)
                                              : key - BeginOffsetNumeric(i)));
          break;
        case FrameBoundKind::kUnboundedFollowing:
          HWF_CHECK_MSG(false, "frame start cannot be UNBOUNDED FOLLOWING");
      }
      switch (frame.end.kind) {
        case FrameBoundKind::kUnboundedPreceding:
          HWF_CHECK_MSG(false, "frame end cannot be UNBOUNDED PRECEDING");
          break;
        case FrameBoundKind::kCurrentRow:
          end = static_cast<int64_t>(in_.peer_end[i]);
          break;
        case FrameBoundKind::kPreceding:
          end = is_null ? static_cast<int64_t>(in_.peer_end[i])
                        : static_cast<int64_t>(UpperBoundKey(
                              in_.ascending ? key - EndOffsetNumeric(i)
                                            : key + EndOffsetNumeric(i)));
          break;
        case FrameBoundKind::kFollowing:
          end = is_null ? static_cast<int64_t>(in_.peer_end[i])
                        : static_cast<int64_t>(UpperBoundKey(
                              in_.ascending ? key + EndOffsetNumeric(i)
                                            : key - EndOffsetNumeric(i)));
          break;
        case FrameBoundKind::kUnboundedFollowing:
          end = n;
          break;
      }
      break;
    }
    case FrameMode::kGroups: {
      const int64_t g = static_cast<int64_t>(in_.group_index[i]);
      const int64_t num_groups =
          static_cast<int64_t>(in_.group_starts.size()) - 1;
      auto group_begin = [&](int64_t group) -> int64_t {
        if (group < 0) return 0;
        if (group >= num_groups) return n;
        return static_cast<int64_t>(in_.group_starts[group]);
      };
      auto group_end = [&](int64_t group) -> int64_t {
        if (group < 0) return 0;
        if (group >= num_groups) return n;
        return static_cast<int64_t>(in_.group_starts[group + 1]);
      };
      switch (frame.begin.kind) {
        case FrameBoundKind::kUnboundedPreceding:
          begin = 0;
          break;
        case FrameBoundKind::kPreceding:
          begin = group_begin(std::max<int64_t>(0, g - BeginOffset(i)));
          break;
        case FrameBoundKind::kCurrentRow:
          begin = static_cast<int64_t>(in_.peer_start[i]);
          break;
        case FrameBoundKind::kFollowing:
          begin = group_begin(g + BeginOffset(i));
          break;
        case FrameBoundKind::kUnboundedFollowing:
          HWF_CHECK_MSG(false, "frame start cannot be UNBOUNDED FOLLOWING");
      }
      switch (frame.end.kind) {
        case FrameBoundKind::kUnboundedPreceding:
          HWF_CHECK_MSG(false, "frame end cannot be UNBOUNDED PRECEDING");
          break;
        case FrameBoundKind::kPreceding: {
          const int64_t group = g - EndOffset(i);
          end = group < 0 ? 0 : group_end(group);
          break;
        }
        case FrameBoundKind::kCurrentRow:
          end = static_cast<int64_t>(in_.peer_end[i]);
          break;
        case FrameBoundKind::kFollowing:
          end = group_end(std::min(num_groups, g + EndOffset(i)));
          break;
        case FrameBoundKind::kUnboundedFollowing:
          end = n;
          break;
      }
      break;
    }
  }

  begin = std::clamp<int64_t>(begin, 0, n);
  end = std::clamp<int64_t>(end, 0, n);
  if (begin >= end) return RowRange{0, 0};
  return RowRange{static_cast<size_t>(begin), static_cast<size_t>(end)};
}

FrameRanges FrameResolver::Resolve(size_t i) const {
  const RowRange base = ResolveBase(i);
  FrameRanges result;
  if (base.empty()) return result;

  // Up to two exclusion holes, ascending.
  RowRange holes[2];
  size_t num_holes = 0;
  switch (in_.frame.exclusion) {
    case FrameExclusion::kNoOthers:
      break;
    case FrameExclusion::kCurrentRow:
      holes[num_holes++] = RowRange{i, i + 1};
      break;
    case FrameExclusion::kGroup:
      holes[num_holes++] = RowRange{in_.peer_start[i], in_.peer_end[i]};
      break;
    case FrameExclusion::kTies:
      if (in_.peer_start[i] < i) {
        holes[num_holes++] = RowRange{in_.peer_start[i], i};
      }
      if (i + 1 < in_.peer_end[i]) {
        holes[num_holes++] = RowRange{i + 1, in_.peer_end[i]};
      }
      break;
  }

  size_t cursor = base.begin;
  for (size_t h = 0; h < num_holes; ++h) {
    const size_t hole_begin = std::max(holes[h].begin, base.begin);
    const size_t hole_end = std::min(holes[h].end, base.end);
    if (hole_begin >= hole_end) continue;  // Hole outside the frame.
    if (cursor < hole_begin) result.Add(cursor, hole_begin);
    cursor = std::max(cursor, hole_end);
  }
  if (cursor < base.end) result.Add(cursor, base.end);
  return result;
}

}  // namespace hwf
