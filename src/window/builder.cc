#include "window/builder.h"

namespace hwf {

std::optional<size_t> WindowQueryBuilder::Resolve(const std::string& column,
                                                  const char* what) {
  StatusOr<size_t> index = table_->ColumnIndex(column);
  if (!index.ok()) {
    RecordError(Status::InvalidArgument(std::string(what) + ": " +
                                        index.status().message()));
    return std::nullopt;
  }
  return *index;
}

void WindowQueryBuilder::RecordError(const Status& status) {
  if (error_.ok()) error_ = status;
}

WindowQueryBuilder& WindowQueryBuilder::PartitionBy(const std::string& column) {
  if (std::optional<size_t> index = Resolve(column, "PartitionBy")) {
    spec_.partition_by.push_back(*index);
  }
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::OrderBy(const std::string& column,
                                                bool ascending,
                                                bool nulls_first) {
  if (std::optional<size_t> index = Resolve(column, "OrderBy")) {
    spec_.order_by.push_back(SortKey{*index, ascending, nulls_first});
  }
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::RowsBetween(FrameBound begin,
                                                    FrameBound end) {
  spec_.frame.mode = FrameMode::kRows;
  spec_.frame.begin = begin;
  spec_.frame.end = end;
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::RangeBetween(FrameBound begin,
                                                     FrameBound end) {
  spec_.frame.mode = FrameMode::kRange;
  spec_.frame.begin = begin;
  spec_.frame.end = end;
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::GroupsBetween(FrameBound begin,
                                                      FrameBound end) {
  spec_.frame.mode = FrameMode::kGroups;
  spec_.frame.begin = begin;
  spec_.frame.end = end;
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::Exclude(FrameExclusion exclusion) {
  spec_.frame.exclusion = exclusion;
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::Call(WindowFunctionKind kind,
                                             const std::string& argument,
                                             const std::string& as) {
  WindowFunctionCall call;
  call.kind = kind;
  if (!argument.empty()) {
    if (std::optional<size_t> index = Resolve(argument, "Call argument")) {
      call.argument = *index;
    }
  }
  calls_.push_back(call);
  result_names_.push_back(as.empty() ? WindowFunctionKindName(kind) : as);
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::FunctionOrderBy(
    const std::string& column, bool ascending, bool nulls_first) {
  if (calls_.empty()) {
    RecordError(Status::InvalidArgument(
        "FunctionOrderBy: no window function call added yet"));
    return *this;
  }
  if (std::optional<size_t> index = Resolve(column, "FunctionOrderBy")) {
    calls_.back().order_by.push_back(SortKey{*index, ascending, nulls_first});
  }
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::Filter(const std::string& column) {
  if (calls_.empty()) {
    RecordError(
        Status::InvalidArgument("Filter: no window function call added yet"));
    return *this;
  }
  if (std::optional<size_t> index = Resolve(column, "Filter")) {
    calls_.back().filter = *index;
  }
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::IgnoreNulls() {
  if (calls_.empty()) {
    RecordError(Status::InvalidArgument(
        "IgnoreNulls: no window function call added yet"));
    return *this;
  }
  calls_.back().ignore_nulls = true;
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::Param(int64_t param) {
  if (calls_.empty()) {
    RecordError(
        Status::InvalidArgument("Param: no window function call added yet"));
    return *this;
  }
  calls_.back().param = param;
  return *this;
}

WindowQueryBuilder& WindowQueryBuilder::Fraction(double fraction) {
  if (calls_.empty()) {
    RecordError(Status::InvalidArgument(
        "Fraction: no window function call added yet"));
    return *this;
  }
  calls_.back().fraction = fraction;
  return *this;
}

StatusOr<WindowSpec> WindowQueryBuilder::spec() const {
  if (!error_.ok()) return error_;
  return spec_;
}

StatusOr<std::vector<WindowFunctionCall>> WindowQueryBuilder::calls() const {
  if (!error_.ok()) return error_;
  return calls_;
}

StatusOr<std::vector<Column>> WindowQueryBuilder::RunColumns(
    const WindowExecutorOptions& options, ThreadPool& pool) const {
  if (!error_.ok()) return error_;
  return EvaluateWindowFunctions(*table_, spec_, calls_, options, pool);
}

StatusOr<Table> WindowQueryBuilder::Run(const WindowExecutorOptions& options,
                                        ThreadPool& pool) const {
  StatusOr<std::vector<Column>> columns = RunColumns(options, pool);
  if (!columns.ok()) return columns.status();
  Table result;
  for (size_t c = 0; c < table_->num_columns(); ++c) {
    result.AddColumn(table_->column_name(c), table_->column(c));
  }
  for (size_t c = 0; c < columns->size(); ++c) {
    result.AddColumn(result_names_[c], std::move((*columns)[c]));
  }
  return result;
}

}  // namespace hwf
