#include "window/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "common/stop_token.h"
#include "mem/external_sort.h"
#include "mem/memory_budget.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/parallel_sort.h"
#include "window/evaluator.h"
#include "window/functions/common.h"
#include "window/frame.h"
#include "window/shared_sort.h"

namespace hwf {

namespace {

/// Compares two rows on one key, including NULL placement.
int CompareRowsByKey(const Table& table, size_t row_a, size_t row_b,
                     const SortKey& key) {
  const Column& column = table.column(key.column);
  const bool null_a = column.IsNull(row_a);
  const bool null_b = column.IsNull(row_b);
  if (null_a || null_b) {
    if (null_a && null_b) return 0;
    const int null_cmp = null_a ? -1 : 1;    // NULL first...
    return key.nulls_first ? null_cmp : -null_cmp;
  }
  int cmp = column.Compare(row_a, row_b);
  return key.ascending ? cmp : -cmp;
}

DataType ArgType(const Table& table, const WindowFunctionCall& call) {
  HWF_CHECK(call.argument.has_value());
  return table.column(*call.argument).type();
}

DataType ResultType(const Table& table, const WindowFunctionCall& call) {
  switch (call.kind) {
    case WindowFunctionKind::kCountStar:
    case WindowFunctionKind::kCount:
    case WindowFunctionKind::kCountDistinct:
    case WindowFunctionKind::kRank:
    case WindowFunctionKind::kDenseRank:
    case WindowFunctionKind::kRowNumber:
    case WindowFunctionKind::kNtile:
      return DataType::kInt64;
    case WindowFunctionKind::kAvg:
    case WindowFunctionKind::kAvgDistinct:
    case WindowFunctionKind::kPercentRank:
    case WindowFunctionKind::kCumeDist:
    case WindowFunctionKind::kPercentileCont:
      return DataType::kDouble;
    case WindowFunctionKind::kSum:
    case WindowFunctionKind::kSumDistinct:
    case WindowFunctionKind::kMin:
    case WindowFunctionKind::kMax:
    case WindowFunctionKind::kMinDistinct:
    case WindowFunctionKind::kMaxDistinct:
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kMedian:
    case WindowFunctionKind::kFirstValue:
    case WindowFunctionKind::kLastValue:
    case WindowFunctionKind::kNthValue:
    case WindowFunctionKind::kLead:
    case WindowFunctionKind::kLag:
    case WindowFunctionKind::kMode:
      return ArgType(table, call);
  }
  return DataType::kInt64;
}

Status DispatchMergeSortTree(const PartitionView& view,
                             const WindowFunctionCall& call, Column* out) {
  switch (call.kind) {
    case WindowFunctionKind::kCountStar:
    case WindowFunctionKind::kCount:
    case WindowFunctionKind::kSum:
    case WindowFunctionKind::kMin:
    case WindowFunctionKind::kMax:
    case WindowFunctionKind::kAvg:
      return EvalDistributive(view, call, out);
    case WindowFunctionKind::kCountDistinct:
    case WindowFunctionKind::kSumDistinct:
    case WindowFunctionKind::kAvgDistinct:
    case WindowFunctionKind::kMinDistinct:
    case WindowFunctionKind::kMaxDistinct:
      return EvalDistinctAggregate(view, call, out);
    case WindowFunctionKind::kRank:
    case WindowFunctionKind::kRowNumber:
    case WindowFunctionKind::kPercentRank:
    case WindowFunctionKind::kCumeDist:
    case WindowFunctionKind::kNtile:
      return EvalRankFunction(view, call, out);
    case WindowFunctionKind::kDenseRank:
      return EvalDenseRank(view, call, out);
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont:
    case WindowFunctionKind::kMedian:
      return EvalPercentile(view, call, out);
    case WindowFunctionKind::kFirstValue:
    case WindowFunctionKind::kLastValue:
    case WindowFunctionKind::kNthValue:
      return EvalValueFunction(view, call, out);
    case WindowFunctionKind::kLead:
    case WindowFunctionKind::kLag:
      return EvalLeadLag(view, call, out);
    case WindowFunctionKind::kMode:
      return Status::NotImplemented(
          "mode is not covered by the merge sort tree (paper §1); use "
          "WindowEngine::kIncremental or kNaive");
  }
  return Status::Internal("unhandled window function kind");
}

Status DispatchEngine(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out) {
  switch (view.options->engine) {
    case WindowEngine::kMergeSortTree:
      return DispatchMergeSortTree(view, call, out);
    case WindowEngine::kNaive:
      return EvalNaive(view, call, out);
    case WindowEngine::kIncremental:
      return EvalIncremental(view, call, out);
    case WindowEngine::kOrderStatisticTree:
      return EvalOrderStatisticTree(view, call, out);
  }
  return Status::Internal("unhandled window engine");
}

/// The shared, input-order-independent result of the executor's phases 1–2:
/// the globally sorted row permutation and the partition boundaries. This is
/// the coarsest cacheable artifact — identical for every query against the
/// same table version with the same PARTITION BY / ORDER BY.
struct SortArtifact {
  std::vector<size_t> sorted;
  std::vector<size_t> partition_starts;

  /// True when `sorted` is exactly the spec's canonical global total order
  /// (partition keys asc nulls-first in declared order, order keys, row
  /// id) — the precondition for delta-merging appended rows into it with
  /// std::merge. Hash-partitioned artifacts (bucket-major arrangement) and
  /// artifacts derived from a PARTITION BY-permuted producer keep the
  /// canonical *intra-partition* order but arrange whole partitions
  /// differently, so they carry false and the ingest delta-merge path
  /// rebuilds instead of merging against them.
  bool canonical = true;

  size_t ApproxBytes() const {
    return (sorted.capacity() + partition_starts.capacity()) * sizeof(size_t);
  }
};

/// Serializes the sort specification (partition keys + order keys with
/// direction and NULL placement) into a cache-key fragment. Unlike
/// OrderingKey (window/shared_sort.h), partition columns keep their
/// declared sequence: the *global arrangement* of a sort artifact depends
/// on it, so artifacts of PARTITION BY permutations must not collide.
std::string SortSpecKey(const WindowSpec& spec) {
  std::string key = "pb";
  for (size_t column : spec.partition_by) {
    key += ':';
    key += std::to_string(column);
  }
  key += "|ob";
  for (const SortKey& sort_key : spec.order_by) {
    key += ':';
    key += std::to_string(sort_key.column);
    key += sort_key.ascending ? 'a' : 'd';
    key += sort_key.nulls_first ? 'f' : 'l';
  }
  return key;
}

const char* EngineName(WindowEngine engine) {
  switch (engine) {
    case WindowEngine::kMergeSortTree:
      return "merge_sort_tree";
    case WindowEngine::kNaive:
      return "naive";
    case WindowEngine::kIncremental:
      return "incremental";
    case WindowEngine::kOrderStatisticTree:
      return "order_statistic_tree";
  }
  return "unknown";
}

/// Per-spec execution state derived once per run: the canonical partition
/// sort keys, cache identities, and the sort-regime decisions.
struct SpecExecState {
  const WindowSpec* spec = nullptr;
  /// Partition columns as sort keys (declared order, asc, nulls first) —
  /// the prefix of the canonical total order.
  std::vector<SortKey> partition_keys;
  /// Declared-order sort key: identity of the artifact's arrangement.
  std::string spec_key;
  /// Canonical ordering key: identity of the per-partition row sequences
  /// (shared across frames and PARTITION BY permutations).
  std::string ordering_key;
  /// Hash-partition regime (producers only).
  bool hash_partition = false;
  size_t hash_est_partitions = 0;
  /// Sort-artifact cache key; empty when caching is off. Hash-regime
  /// artifacts get a "|hp" suffix so the two arrangements never collide.
  std::string sort_cache_key;
  bool delta_merge_possible = false;
  std::string base_sort_key;
};

}  // namespace

int CompareRowsBy(const Table& table, size_t row_a, size_t row_b,
                  std::span<const SortKey> keys) {
  for (const SortKey& key : keys) {
    int cmp = CompareRowsByKey(table, row_a, row_b, key);
    if (cmp != 0) return cmp;
  }
  return 0;
}

std::vector<SortKey> EffectiveOrder(const WindowSpec& spec,
                                    const WindowFunctionCall& call) {
  if (!call.order_by.empty()) return call.order_by;
  switch (call.kind) {
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont:
    case WindowFunctionKind::kMedian:
      // Percentiles order by their argument by default.
      if (call.argument.has_value()) {
        return {SortKey{*call.argument, true, false}};
      }
      break;
    default:
      break;
  }
  return spec.order_by;
}

IndexRemap BuildCallRemap(const PartitionView& view,
                          const WindowFunctionCall& call,
                          bool drop_null_args) {
  const bool has_filter = call.filter.has_value();
  const bool drop_nulls = drop_null_args && call.argument.has_value();
  if (!has_filter && !drop_nulls) {
    return IndexRemap::Identity(view.size());
  }
  std::vector<uint8_t> include(view.size(), 1);
  const Column* filter_col = has_filter ? &view.col(*call.filter) : nullptr;
  const Column* arg_col = drop_nulls ? &view.col(*call.argument) : nullptr;
  for (size_t i = 0; i < view.size(); ++i) {
    const size_t row = view.rows[i];
    if (filter_col != nullptr &&
        (filter_col->IsNull(row) || filter_col->GetInt64(row) == 0)) {
      include[i] = 0;
    } else if (arg_col != nullptr && arg_col->IsNull(row)) {
      include[i] = 0;
    }
  }
  return IndexRemap::Build(include);
}

size_t MapRangesToFiltered(const FrameRanges& frames, const IndexRemap& remap,
                           RowRange* out) {
  size_t count = 0;
  for (size_t r = 0; r < frames.count(); ++r) {
    const size_t begin = remap.ToFiltered(frames[r].begin);
    const size_t end = remap.ToFiltered(frames[r].end);
    if (begin < end) out[count++] = RowRange{begin, end};
  }
  return count;
}

std::string CallCacheKey(const PartitionView& view,
                         const WindowFunctionCall& call, bool drop_null_args) {
  const bool drop_nulls = drop_null_args && call.argument.has_value();
  std::string key;
  key += drop_nulls ? "|dn:" + std::to_string(*call.argument) : "|dn-";
  key += call.filter.has_value() ? "|f:" + std::to_string(*call.filter)
                                 : "|f-";
  key += "|eo";
  for (const SortKey& sort_key : EffectiveOrder(*view.spec, call)) {
    key += ':';
    key += std::to_string(sort_key.column);
    key += sort_key.ascending ? 'a' : 'd';
    key += sort_key.nulls_first ? 'f' : 'l';
  }
  const MergeSortTreeOptions& tree = view.options->tree;
  key += "|t:" + std::to_string(tree.fanout) + ":" +
         std::to_string(tree.sampling) + ":" + (tree.use_cascading ? "c" : "n");
  return key;
}

StatusOr<std::vector<std::vector<Column>>> EvaluateWindowSpecGroups(
    const Table& table, std::span<const WindowSpecGroup> groups,
    const WindowExecutorOptions& options, ThreadPool& pool) {
  for (const WindowSpecGroup& group : groups) {
    if (group.spec == nullptr) {
      return Status::InvalidArgument("WindowSpecGroup carries a null spec");
    }
    Status status = ValidateWindowSpec(table, *group.spec);
    if (!status.ok()) return status;
    for (const WindowFunctionCall& call : group.calls) {
      status = ValidateWindowCall(table, *group.spec, call);
      if (!status.ok()) return status;
    }
  }
  const size_t num_groups = groups.size();
  if (num_groups == 0) return std::vector<std::vector<Column>>{};

  const size_t n = table.num_rows();
  HWF_TRACE_SCOPE_ARG("window.execute", "rows", n);

  // A local copy of the options lets the executor route the attached
  // profile into every tree build (MergeSortTreeOptions::profile) without
  // mutating the caller's struct.
  WindowExecutorOptions exec_options = options;
  obs::ExecutionProfile* profile = options.profile;
  exec_options.tree.profile = profile;
  obs::CounterSnapshot counters_before;
  std::chrono::steady_clock::time_point run_start;
  if (profile != nullptr) {
    profile->Clear();
    counters_before = obs::SnapshotCounters();
    run_start = std::chrono::steady_clock::now();
  }

  // Memory governance: one budget per execution. The limit comes from the
  // options, or — when unset — from HWF_TEST_MEMORY_LIMIT, the hook the
  // forced-spill CI job uses to route the whole regular test suite through
  // the spill paths. Budgets that cannot cover even the irreducible working
  // set (the sorted row permutation, which has no out-of-core
  // representation) fail fast with a clean Status instead of thrashing.
  // Above that floor the executor always completes: sort scratch and tree
  // levels degrade to spill files, and the remaining unsheddable
  // allocations (per-partition frame descriptors) use forced reservations
  // whose overshoot is visible in mem.forced_over_budget_bytes.
  size_t memory_limit = options.memory_limit_bytes;
  if (memory_limit == 0) {
    if (const char* env = std::getenv("HWF_TEST_MEMORY_LIMIT")) {
      size_t parsed = 0;
      if (mem::ParseMemorySize(env, &parsed)) memory_limit = parsed;
    }
  }
  mem::MemoryBudget budget(memory_limit);
  const mem::MemoryContext mem_ctx{&budget,
                                   /*allow_spill=*/memory_limit > 0, profile};
  if (memory_limit > 0) {
    const size_t irreducible = n * sizeof(size_t) + (size_t{64} << 10);
    if (irreducible > memory_limit) {
      return Status::ResourceExhausted(
          "memory limit of " + std::to_string(memory_limit) +
          " bytes cannot cover the irreducible working set of " +
          std::to_string(irreducible) + " bytes for " + std::to_string(n) +
          " rows");
    }
  }
  exec_options.tree.mem = mem_ctx;

  // Cross-query caching is engaged only for unbudgeted executions: cached
  // artifacts outlive the query, so they must neither be charged to nor
  // spill through the per-query budget. Cached tree builds therefore get an
  // empty MemoryContext (no budget pointer to dangle).
  const bool cache_enabled = options.tree_cache != nullptr &&
                             !options.cache_key.empty() && memory_limit == 0;
  if (cache_enabled) exec_options.tree.mem = {};
  const bool content_keys =
      cache_enabled && !options.content_cache_key.empty();
  const bool delta_state_present =
      cache_enabled && !options.delta_base_key.empty() &&
      options.delta_base_rows > 0 && options.delta_base_rows < n;

  // The shared-sort plan over the groups' specs: which specs pay for a sort
  // and which reuse another spec's output (window/shared_sort.h).
  std::vector<const WindowSpec*> specs;
  specs.reserve(num_groups);
  for (const WindowSpecGroup& group : groups) specs.push_back(group.spec);
  const SharedSortPlan plan = PlanSharedSorts(specs);

  std::vector<SpecExecState> states(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    SpecExecState& st = states[g];
    st.spec = specs[g];
    st.partition_keys.reserve(st.spec->partition_by.size());
    for (size_t column : st.spec->partition_by) {
      st.partition_keys.push_back(SortKey{column, true, true});
    }
    st.spec_key = SortSpecKey(*st.spec);
    st.ordering_key = OrderingKey(*st.spec);
  }

  // The canonical total order of a spec's global sort: (partition keys,
  // order keys, row id). Shared by the cold sort, the delta merge and the
  // partition-boundary scans so every path agrees bit-for-bit.
  auto row_less_for = [&table](const SpecExecState& st) {
    return [&table, &st](size_t a, size_t b) {
      int cmp = CompareRowsBy(table, a, b, st.partition_keys);
      if (cmp != 0) return cmp < 0;
      cmp = CompareRowsBy(table, a, b, st.spec->order_by);
      if (cmp != 0) return cmp < 0;
      return a < b;
    };
  };
  auto compute_partition_starts = [&](const SpecExecState& st,
                                      const std::vector<size_t>& sorted_rows) {
    std::vector<size_t> starts;
    starts.push_back(0);
    for (size_t i = 1; i < sorted_rows.size(); ++i) {
      if (CompareRowsBy(table, sorted_rows[i - 1], sorted_rows[i],
                        st.partition_keys) != 0) {
        starts.push_back(i);
      }
    }
    starts.push_back(sorted_rows.size());
    return starts;
  };

  // Combined hash of a row's partition key tuple. Equal tuples hash equal
  // (NULLs included — Column::Hash maps NULL to a fixed value), which is
  // what pins every partition whole inside one hash bucket.
  auto row_partition_hash = [&table](const WindowSpec& spec, size_t row) {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (size_t column : spec.partition_by) {
      h ^= table.column(column).Hash(row) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  };

  // Hash-partition regime decision (kAuto): sample partition-key hashes at
  // a fixed stride and estimate the partition cardinality by inverting the
  // expected-distinct curve E[d] = D(1 - (1 - 1/D)^s) — increasing in D, so
  // a binary search recovers the maximum-likelihood D from the observed
  // distinct count d. Deterministic for a given table content, so cached
  // artifacts never flip regimes under the same key.
  const size_t hash_max_avg = options.hash_partition_max_avg_rows > 0
                                  ? options.hash_partition_max_avg_rows
                                  : options.morsel_size;
  auto decide_hash_partition = [&](SpecExecState& st) {
    if (st.spec->partition_by.empty()) return;
    if (options.hash_partition == HashPartitionMode::kOff) return;
    if (options.hash_partition == HashPartitionMode::kForce) {
      st.hash_partition = true;
      return;
    }
    // An ingest delta state prefers the canonical path: merging the sorted
    // delta into the cached base artifact is O(d log d + n), cheaper than
    // re-partitioning the whole table, and it keeps the artifact
    // delta-mergeable for the append after this one.
    if (delta_state_present) return;
    const size_t min_parts =
        std::max<size_t>(options.hash_partition_min_partitions, 1);
    if (n < 2 * min_parts) return;
    const size_t s = std::min<size_t>(n, 1024);
    const size_t stride = n / s;
    std::vector<uint64_t> sample(s);
    for (size_t i = 0; i < s; ++i) {
      sample[i] = row_partition_hash(*st.spec, i * stride);
    }
    std::sort(sample.begin(), sample.end());
    const size_t d = static_cast<size_t>(
        std::unique(sample.begin(), sample.end()) - sample.begin());
    size_t estimate = n;  // a collision-free sample means "high cardinality"
    if (d < s) {
      double lo = static_cast<double>(d);
      double hi = static_cast<double>(n);
      for (int iter = 0; iter < 48; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const double expected =
            mid * (1.0 - std::pow(1.0 - 1.0 / mid,
                                  static_cast<double>(s)));
        (expected < static_cast<double>(d) ? lo : hi) = mid;
      }
      estimate = static_cast<size_t>(lo);
    }
    st.hash_est_partitions = estimate;
    st.hash_partition =
        estimate >= min_parts && estimate > 0 && n / estimate <= hash_max_avg;
  };

  for (size_t g = 0; g < num_groups; ++g) {
    SpecExecState& st = states[g];
    if (plan.IsProducer(g)) decide_hash_partition(st);
    if (cache_enabled) {
      st.sort_cache_key = options.cache_key + "|sort|" + st.spec_key +
                          (st.hash_partition ? "|hp" : "");
    }
    st.delta_merge_possible = delta_state_present && !st.hash_partition;
    if (st.delta_merge_possible) {
      st.base_sort_key = options.delta_base_key + "|sort|" + st.spec_key;
    }
  }

  // Phases 1–2 (global-sort regime), as a builder so the cache can skip
  // them entirely on a hit.
  auto build_sort_artifact =
      [&](const SpecExecState& st) -> StatusOr<SortArtifact> {
    const WindowSpec& spec = *st.spec;
    SortArtifact artifact;
    // Phase 1: one global sort by (partition keys, order keys, row id).
    // Partition keys use a fixed canonical order; the row-id tiebreak makes
    // the sort a deterministic total order (and thereby reproducible across
    // thread counts).
    mem::MemoryReservation sorted_bytes;
    sorted_bytes.ForceReserve(&budget, n * sizeof(size_t));
    std::vector<size_t>& sorted = artifact.sorted;
    sorted.resize(n);
    // The sort and partition phases are bracketed with an explicitly-reset
    // optional timer so the straight-line code needs no extra nesting.
    std::optional<obs::ScopedPhaseTimer> phase_timer;
    phase_timer.emplace(profile, obs::ProfilePhase::kSort);
    for (size_t i = 0; i < n; ++i) sorted[i] = i;
    // Fast path standing in for Hyper's generated comparators (§5.4): with
    // no partitioning and a single numeric ORDER BY key, sort fixed-width
    // encoded records instead of dispatching a generic comparator per
    // comparison.
    const bool encoded_sort =
        spec.partition_by.empty() && spec.order_by.size() == 1 &&
        table.column(spec.order_by[0].column).type() != DataType::kString;
    if (encoded_sort) {
      const SortKey& key = spec.order_by[0];
      const Column& column = table.column(key.column);
      const bool is_int = column.type() == DataType::kInt64;
      struct SortRec {
        uint8_t null_rank;
        uint64_t key;
        uint64_t row;
        bool operator<(const SortRec& other) const {
          if (null_rank != other.null_rank) return null_rank < other.null_rank;
          if (key != other.key) return key < other.key;
          return row < other.row;
        }
        // The comparison above is exactly this word order, which opts the
        // record into the offset-value-coded merge kernel. (Enum, not a
        // static member: local classes cannot have those until C++23.)
        enum : size_t { kOvcWords = 3 };
        uint64_t OvcWord(size_t w) const {
          return w == 0 ? null_rank : w == 1 ? key : row;
        }
      };
      mem::MemoryReservation records_bytes;
      records_bytes.ForceReserve(&budget, n * sizeof(SortRec));
      std::vector<SortRec> records(n);
      ParallelFor(
          0, n,
          [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              if (column.IsNull(i)) {
                records[i] = {static_cast<uint8_t>(key.nulls_first ? 0 : 2), 0,
                              i};
              } else {
                records[i] = {
                    1,
                    is_int ? internal_window::EncodeInt64Key(column.GetInt64(i),
                                                             key.ascending)
                           : internal_window::EncodeDoubleKey(
                                 column.GetDouble(i), key.ascending),
                    i};
              }
            }
          },
          pool, options.morsel_size);
      Status sort_status = mem::SortWithBudget(
          records, [](const SortRec& a, const SortRec& b) { return a < b; },
          pool, mem_ctx, options.morsel_size, PartitionScheme::kThreeWay,
          exec_options.tree.use_ovc);
      if (!sort_status.ok()) return sort_status;
      ParallelFor(
          0, n,
          [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              sorted[i] = static_cast<size_t>(records[i].row);
            }
          },
          pool, options.morsel_size);
    } else {
      Status sort_status = mem::SortWithBudget(
          sorted, row_less_for(st), pool, mem_ctx, options.morsel_size);
      if (!sort_status.ok()) return sort_status;
    }

    // Phase 2: partition boundaries (equal partition keys).
    phase_timer.reset();
    phase_timer.emplace(profile, obs::ProfilePhase::kPartition);
    artifact.partition_starts = compute_partition_starts(st, sorted);
    phase_timer.reset();
    if (Status stop = CheckStop(); !stop.ok()) return stop;
    return artifact;
  };

  // Phases 1–2, hash-partition regime: scatter rows into hash buckets of
  // the partition key (morsel-parallel histogram + scatter), then sort each
  // bucket independently by the same canonical comparator. Equal partition
  // keys hash equal, so every partition lands whole in one bucket and the
  // boundary scan is unchanged; within a partition the order is the same
  // (ORDER BY, row id) sequence as the global sort — results are
  // bit-identical, only the global arrangement of partitions differs
  // (bucket-major instead of key order), which per-row-id result writes
  // never observe.
  auto build_sort_artifact_hashed =
      [&](const SpecExecState& st) -> StatusOr<SortArtifact> {
    const WindowSpec& spec = *st.spec;
    const size_t chunk = std::max<size_t>(options.morsel_size, 1);
    const size_t num_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
    size_t buckets = 64;
    int log2_buckets = 6;
    while (buckets < 65536 && buckets * chunk < 2 * n) {
      buckets <<= 1;
      ++log2_buckets;
    }
    const int shift = 64 - log2_buckets;
    // Budget-aware: the partitioner's scratch (row hashes + per-chunk
    // histograms) is optional — when the budget cannot take it, fall back
    // to the global regime, which can spill.
    const size_t scratch_bytes =
        n * sizeof(uint64_t) + num_chunks * buckets * sizeof(size_t);
    mem::MemoryReservation scratch;
    if (memory_limit > 0 && !scratch.Reserve(&budget, scratch_bytes).ok()) {
      return build_sort_artifact(st);
    }

    SortArtifact artifact;
    artifact.canonical = false;
    std::optional<obs::ScopedPhaseTimer> phase_timer;
    phase_timer.emplace(profile, obs::ProfilePhase::kSort);

    std::vector<uint64_t> hashes(n);
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            hashes[i] = row_partition_hash(spec, i);
          }
        },
        pool, chunk);

    // Per-chunk bucket histograms, then one exclusive scan that assigns
    // every (chunk, bucket) cell its write cursor — the classic radix
    // scatter, so the parallel scatter below writes disjoint regions.
    std::vector<size_t> cursors(num_chunks * buckets, 0);
    ParallelFor(
        0, num_chunks,
        [&](size_t clo, size_t chi) {
          for (size_t c = clo; c < chi; ++c) {
            size_t* counts = cursors.data() + c * buckets;
            const size_t end = std::min(n, (c + 1) * chunk);
            for (size_t i = c * chunk; i < end; ++i) {
              ++counts[hashes[i] >> shift];
            }
          }
        },
        pool, 1);
    std::vector<size_t> bucket_start(buckets + 1);
    size_t pos = 0;
    for (size_t b = 0; b < buckets; ++b) {
      bucket_start[b] = pos;
      for (size_t c = 0; c < num_chunks; ++c) {
        const size_t count = cursors[c * buckets + b];
        cursors[c * buckets + b] = pos;
        pos += count;
      }
    }
    bucket_start[buckets] = n;

    mem::MemoryReservation sorted_bytes;
    sorted_bytes.ForceReserve(&budget, n * sizeof(size_t));
    artifact.sorted.resize(n);
    ParallelFor(
        0, num_chunks,
        [&](size_t clo, size_t chi) {
          for (size_t c = clo; c < chi; ++c) {
            size_t* cursor = cursors.data() + c * buckets;
            const size_t end = std::min(n, (c + 1) * chunk);
            for (size_t i = c * chunk; i < end; ++i) {
              artifact.sorted[cursor[hashes[i] >> shift]++] = i;
            }
          }
        },
        pool, 1);

    // Each bucket holds a handful of whole partitions: sort them
    // independently, in parallel — O(n log(n/B)) total instead of the
    // global O(n log n), with no cross-bucket merge.
    auto row_less = row_less_for(st);
    Status sort_status = ParallelForStatus(
        0, buckets,
        [&](size_t b, size_t) -> Status {
          if (Status stop = CheckStop(); !stop.ok()) return stop;
          std::sort(artifact.sorted.begin() + bucket_start[b],
                    artifact.sorted.begin() + bucket_start[b + 1], row_less);
          return Status::OK();
        },
        pool, /*morsel_size=*/1);
    if (!sort_status.ok()) return sort_status;
    obs::Add(obs::Counter::kExecutorHashPartitionedRows, n);

    // Phase 2: partition boundaries. Adjacent rows from different buckets
    // have different hashes, hence different partition keys — boundaries
    // fall out of the same scan as the global regime.
    phase_timer.reset();
    phase_timer.emplace(profile, obs::ProfilePhase::kPartition);
    artifact.partition_starts = compute_partition_starts(st, artifact.sorted);
    phase_timer.reset();
    if (Status stop = CheckStop(); !stop.ok()) return stop;
    return artifact;
  };

  // The streaming-ingest increment around the cold builder. With appended
  // rows present and the base state's artifact cached, the combined order
  // is recovered without re-sorting the base: sort the delta ids (all >
  // base ids), then stably merge — the row-id tiebreak makes the global
  // sort a unique total order, so merging sorted subsets reproduces the
  // cold result exactly, in O(d log d) comparisons plus one O(n) sweep.
  // On a cold build in delta mode, the base-only artifact is derived and
  // cached as a side effect so the *next* append can take the merge path
  // (self-healing after cache eviction or a cold server start).
  auto build_or_merge_sort_artifact =
      [&](const SpecExecState& st) -> StatusOr<SortArtifact> {
    auto row_less = row_less_for(st);
    if (st.delta_merge_possible) {
      std::shared_ptr<const SortArtifact> base =
          options.tree_cache->Get<SortArtifact>(st.base_sort_key);
      if (base != nullptr && base->canonical) {
        obs::ScopedPhaseTimer timer(profile, obs::ProfilePhase::kDeltaMerge);
        SortArtifact artifact;
        const size_t base_n = options.delta_base_rows;
        std::vector<size_t> delta(n - base_n);
        for (size_t i = 0; i < delta.size(); ++i) delta[i] = base_n + i;
        std::sort(delta.begin(), delta.end(), row_less);
        artifact.sorted.resize(n);
        std::merge(base->sorted.begin(), base->sorted.end(), delta.begin(),
                   delta.end(), artifact.sorted.begin(), row_less);
        artifact.partition_starts =
            compute_partition_starts(st, artifact.sorted);
        obs::Add(obs::Counter::kIngestDeltaMerges);
        if (Status stop = CheckStop(); !stop.ok()) return stop;
        return artifact;
      }
    }
    StatusOr<SortArtifact> built = st.hash_partition
                                       ? build_sort_artifact_hashed(st)
                                       : build_sort_artifact(st);
    if (!built.ok() || !st.delta_merge_possible || !built->canonical) {
      return built;
    }
    obs::ScopedPhaseTimer timer(profile, obs::ProfilePhase::kDeltaMerge);
    SortArtifact base;
    base.sorted.reserve(options.delta_base_rows);
    for (size_t row : built->sorted) {
      if (row < options.delta_base_rows) base.sorted.push_back(row);
    }
    base.partition_starts = compute_partition_starts(st, base.sorted);
    const size_t base_bytes = base.ApproxBytes();
    options.tree_cache->Put<SortArtifact>(
        st.base_sort_key,
        {std::make_shared<const SortArtifact>(std::move(base)), base_bytes});
    return built;
  };

  auto acquire_producer_artifact = [&](const SpecExecState& st)
      -> StatusOr<std::shared_ptr<const SortArtifact>> {
    if (!st.sort_cache_key.empty()) {
      return options.tree_cache->GetOrBuild<SortArtifact>(
          st.sort_cache_key,
          [&]() -> StatusOr<mst::TreeCache::Built<SortArtifact>> {
            StatusOr<SortArtifact> built = build_or_merge_sort_artifact(st);
            if (!built.ok()) return built.status();
            const size_t bytes = built->ApproxBytes();
            return mst::TreeCache::Built<SortArtifact>{
                std::make_shared<const SortArtifact>(std::move(*built)),
                bytes};
          });
    }
    StatusOr<SortArtifact> built = st.hash_partition
                                       ? build_sort_artifact_hashed(st)
                                       : build_sort_artifact(st);
    if (!built.ok()) return built.status();
    return std::make_shared<const SortArtifact>(std::move(*built));
  };

  // Recovers a covered spec's sort from its producer's artifact. The
  // producer's ordering is strictly finer: inside every maximal run of rows
  // tied on the consumer's (shorter) ORDER BY prefix, the consumer's
  // canonical order is plain ascending row id — the producer's extra keys
  // are the only thing arranging those ties — so one O(n) boundary sweep
  // plus integer-only tie re-sorts reproduces the consumer's sort
  // bit-identically, at a fraction of a full comparison sort. Ties never
  // span a partition boundary, so partition starts carry over unchanged.
  auto derive_artifact = [&](const SpecExecState& prod,
                             const SortArtifact& from,
                             const SpecExecState& cons)
      -> StatusOr<SortArtifact> {
    obs::ScopedPhaseTimer timer(profile, obs::ProfilePhase::kSort);
    SortArtifact artifact;
    artifact.sorted = from.sorted;
    artifact.partition_starts = from.partition_starts;
    artifact.canonical =
        from.canonical && prod.spec->partition_by == cons.spec->partition_by;
    const std::vector<size_t>& starts = artifact.partition_starts;
    const size_t num_partitions = starts.size() - 1;
    std::span<const SortKey> order(cons.spec->order_by);
    Status status = ParallelForStatus(
        0, num_partitions,
        [&](size_t p, size_t) -> Status {
          if (Status stop = CheckStop(); !stop.ok()) return stop;
          size_t* data = artifact.sorted.data();
          size_t run = starts[p];
          for (size_t i = starts[p] + 1; i <= starts[p + 1]; ++i) {
            const bool boundary =
                i == starts[p + 1] ||
                CompareRowsBy(table, data[i - 1], data[i], order) != 0;
            if (!boundary) continue;
            if (i - run > 1) std::sort(data + run, data + i);
            run = i;
          }
          return Status::OK();
        },
        pool, /*morsel_size=*/1);
    if (!status.ok()) return status;
    return artifact;
  };

  // Build every producer's artifact, then satisfy the covered specs from
  // them — verbatim for identical orderings, derived for strict prefixes.
  std::vector<std::shared_ptr<const SortArtifact>> artifacts(num_groups);
  size_t sorts_shared = 0;
  size_t sorts_elided = 0;
  for (size_t index : plan.sequence) {
    const SpecExecState& st = states[index];
    if (plan.IsProducer(index)) {
      StatusOr<std::shared_ptr<const SortArtifact>> artifact =
          acquire_producer_artifact(st);
      if (!artifact.ok()) return artifact.status();
      artifacts[index] = std::move(*artifact);
    } else if (plan.reuse[index] == SharedSortPlan::Reuse::kExact) {
      // Identical ORDER BY: the producer's permutation and boundaries serve
      // this spec verbatim. (A PARTITION BY permutation only rearranges
      // whole partitions, which the per-row-id result writes never see.)
      artifacts[index] = artifacts[plan.producer[index]];
      ++sorts_elided;
      ++sorts_shared;
    } else {
      StatusOr<SortArtifact> derived = derive_artifact(
          states[plan.producer[index]], *artifacts[plan.producer[index]], st);
      if (!derived.ok()) return derived.status();
      artifacts[index] =
          std::make_shared<const SortArtifact>(std::move(*derived));
      ++sorts_shared;
    }
  }
  if (sorts_shared > 0) {
    obs::Add(obs::Counter::kExecutorSortsShared, sorts_shared);
  }
  if (sorts_elided > 0) {
    obs::Add(obs::Counter::kExecutorSortsElided, sorts_elided);
  }

  if (profile != nullptr) {
    std::string text = plan.Describe(specs);
    std::string regimes;
    for (size_t g = 0; g < num_groups; ++g) {
      if (!plan.IsProducer(g)) continue;
      if (!regimes.empty()) regimes += ", ";
      regimes += "spec#" + std::to_string(g) + "=";
      if (states[g].hash_partition) {
        regimes += "hash";
        if (states[g].hash_est_partitions > 0) {
          regimes += "(est " +
                     std::to_string(states[g].hash_est_partitions) +
                     " partitions)";
        }
      } else {
        regimes += "global";
      }
    }
    text += "\nregime: " + regimes;
    profile->SetPlanText(text);
  }

  // Result columns per group, all NULL until written.
  std::vector<std::vector<Column>> results(num_groups);
  size_t total_partitions = 0;

  // Phase 3 for one group: per partition — frame resolution, then function
  // evaluation.
  auto evaluate_group = [&](size_t g) -> Status {
    const SpecExecState& st = states[g];
    const WindowSpec& spec = *st.spec;
    std::span<const WindowFunctionCall> calls = groups[g].calls;
    const std::vector<size_t>& sorted = artifacts[g]->sorted;
    const std::vector<size_t>& partition_starts =
        artifacts[g]->partition_starts;

    std::vector<Column>& group_results = results[g];
    group_results.reserve(calls.size());
    for (const WindowFunctionCall& call : calls) {
      group_results.emplace_back(ResultType(table, call), n);
    }

    const FrameSpec& frame = spec.frame;
    const bool needs_peers =
        frame.exclusion == FrameExclusion::kGroup ||
        frame.exclusion == FrameExclusion::kTies ||
        frame.mode == FrameMode::kGroups ||
        (frame.mode == FrameMode::kRange &&
         frame.begin.kind != FrameBoundKind::kUnboundedPreceding) ||
        (frame.mode == FrameMode::kRange &&
         frame.end.kind != FrameBoundKind::kUnboundedFollowing);
    const bool needs_range_keys =
        frame.mode == FrameMode::kRange &&
        (frame.begin.kind == FrameBoundKind::kPreceding ||
         frame.begin.kind == FrameBoundKind::kFollowing ||
         frame.end.kind == FrameBoundKind::kPreceding ||
         frame.end.kind == FrameBoundKind::kFollowing);

    auto process_partition = [&](size_t p, ThreadPool& part_pool) -> Status {
      if (Status stop = CheckStop(); !stop.ok()) return stop;
      const size_t part_begin = partition_starts[p];
      const size_t part_end = partition_starts[p + 1];
      const size_t part_n = part_end - part_begin;
      std::span<const size_t> rows(sorted.data() + part_begin, part_n);

      // Everything up to the resolved frames is frame-resolution work (peer
      // groups, range keys, offsets, the resolver sweep).
      std::optional<obs::ScopedPhaseTimer> part_timer;
      part_timer.emplace(profile, obs::ProfilePhase::kFrameResolve);

      FrameResolver::Inputs inputs;
      inputs.n = part_n;
      inputs.frame = frame;

      if (needs_peers) {
        inputs.peer_start.resize(part_n);
        inputs.peer_end.resize(part_n);
        inputs.group_index.resize(part_n);
        size_t group_begin = 0;
        size_t group = 0;
        for (size_t i = 1; i <= part_n; ++i) {
          const bool boundary =
              i == part_n ||
              CompareRowsBy(table, rows[i - 1], rows[i], spec.order_by) != 0;
          if (boundary) {
            inputs.group_starts.push_back(group_begin);
            for (size_t j = group_begin; j < i; ++j) {
              inputs.peer_start[j] = group_begin;
              inputs.peer_end[j] = i;
              inputs.group_index[j] = group;
            }
            group_begin = i;
            ++group;
          }
        }
        inputs.group_starts.push_back(part_n);  // Sentinel.
      }

      if (needs_range_keys) {
        const SortKey& key = spec.order_by[0];
        const Column& column = table.column(key.column);
        inputs.ascending = key.ascending;
        inputs.range_keys.resize(part_n);
        inputs.range_key_valid.resize(part_n);
        size_t num_nulls = 0;
        for (size_t i = 0; i < part_n; ++i) {
          const size_t row = rows[i];
          if (column.IsNull(row)) {
            inputs.range_keys[i] = 0;
            inputs.range_key_valid[i] = 0;
            ++num_nulls;
          } else {
            inputs.range_keys[i] = column.GetNumeric(row);
            inputs.range_key_valid[i] = 1;
          }
        }
        if (key.nulls_first) {
          inputs.nonnull_begin = num_nulls;
          inputs.nonnull_end = part_n;
        } else {
          inputs.nonnull_begin = 0;
          inputs.nonnull_end = part_n - num_nulls;
        }
      }

      auto load_offsets = [&](const FrameBound& bound,
                              std::vector<int64_t>* ints,
                              std::vector<double>* doubles) {
        if (!bound.offset_column.has_value()) return;
        if (bound.kind != FrameBoundKind::kPreceding &&
            bound.kind != FrameBoundKind::kFollowing) {
          return;
        }
        const Column& column = table.column(*bound.offset_column);
        if (frame.mode == FrameMode::kRange) {
          doubles->resize(part_n);
          for (size_t i = 0; i < part_n; ++i) {
            (*doubles)[i] =
                column.IsNull(rows[i]) ? 0.0 : column.GetNumeric(rows[i]);
          }
        } else {
          ints->resize(part_n);
          for (size_t i = 0; i < part_n; ++i) {
            (*ints)[i] = column.IsNull(rows[i])
                             ? 0
                             : static_cast<int64_t>(
                                   std::llround(column.GetNumeric(rows[i])));
          }
        }
      };
      load_offsets(frame.begin, &inputs.begin_offsets,
                   &inputs.begin_offsets_numeric);
      load_offsets(frame.end, &inputs.end_offsets,
                   &inputs.end_offsets_numeric);

      FrameResolver resolver(std::move(inputs));
      mem::MemoryReservation frames_bytes;
      frames_bytes.ForceReserve(&budget, part_n * sizeof(FrameRanges));
      std::vector<FrameRanges> frames(part_n);
      ParallelFor(
          0, part_n,
          [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) frames[i] = resolver.Resolve(i);
          },
          part_pool, options.morsel_size);

      PartitionView view;
      view.table = &table;
      view.spec = &spec;
      view.rows = rows;
      view.frames = frames;
      view.options = &exec_options;
      view.pool = &part_pool;
      PartitionDelta part_delta;
      if (cache_enabled) {
        view.cache = options.tree_cache;
        if (content_keys && part_n > 0) {
          // Content-addressed: (epoch, gen) fixes every row's values, and
          // the (first sorted id, count, last sorted id) coordinates pin
          // down the exact member set — two states of the same content
          // generation whose partition shares first id and count hold
          // *identical* row sets (appends only ever extend a partition), so
          // re-hitting an entry across appends or compactions is provably
          // exact. Keyed by the canonical ordering — the intra-partition
          // sequence is (ORDER BY, row id) in every regime and arrangement
          // — so the cached trees are shared across frames, PARTITION BY
          // permutations and the sort regimes.
          view.cache_prefix = options.content_cache_key + "|" +
                              st.ordering_key + "|p" +
                              std::to_string(rows[0]) + "." +
                              std::to_string(part_n) + "." +
                              std::to_string(rows[part_n - 1]);
        } else {
          // Positional coordinates index into the artifact actually used,
          // so the prefix names that artifact (the producer's sort cache
          // key, hash-regime suffix included) plus this spec's canonical
          // ordering, which fixes the intra-partition order the cached
          // trees were built over.
          view.cache_prefix = states[plan.producer[g]].sort_cache_key + "|" +
                              st.ordering_key + "|p" +
                              std::to_string(part_begin) + "-" +
                              std::to_string(part_end);
        }
        if (content_keys && options.delta_base_rows > 0 && part_n > 0) {
          // Partition-local delta census for the merged two-tree probe
          // path: which rows are fresh, and under which key the pre-append
          // base subset's tree would have been cached.
          size_t delta_count = 0;
          size_t base_count = 0;
          size_t first_base = 0;
          size_t last_base = 0;
          for (size_t i = 0; i < part_n; ++i) {
            if (rows[i] >= options.delta_base_rows) {
              ++delta_count;
            } else {
              if (base_count == 0) first_base = rows[i];
              last_base = rows[i];
              ++base_count;
            }
          }
          if (delta_count > 0 && base_count > 0) {
            part_delta.base_rows = options.delta_base_rows;
            part_delta.delta_in_partition = delta_count;
            part_delta.main_prefix =
                options.content_cache_key + "|" + st.ordering_key + "|p" +
                std::to_string(first_base) + "." + std::to_string(base_count) +
                "." + std::to_string(last_base);
            view.delta = &part_delta;
          }
        }
      }

      // The dispatch interval covers preprocessing, tree builds AND
      // probing; the preprocessing and tree-build shares are recorded
      // separately by the evaluators / builds themselves and subtracted
      // from kProbe once at the end of the execution, keeping the phases
      // disjoint without extra clock reads inside the dispatch.
      part_timer.reset();
      part_timer.emplace(profile, obs::ProfilePhase::kProbe);
      for (size_t c = 0; c < calls.size(); ++c) {
        Status call_status = DispatchEngine(view, calls[c], &group_results[c]);
        if (!call_status.ok()) return call_status;
      }
      return Status::OK();
    };

    const size_t num_partitions = partition_starts.size() - 1;
    size_t largest_partition = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      largest_partition = std::max(
          largest_partition, partition_starts[p + 1] - partition_starts[p]);
    }
    if (num_partitions > 1 && largest_partition <= options.morsel_size &&
        pool.num_workers() > 0) {
      // Many small partitions: parallelize ACROSS partitions (Leis et al.
      // [27]); each partition is one task evaluated serially inside. A
      // worker-less pool makes the inner ParallelFor calls run inline.
      // Meyers singleton: C++11 magic statics make the first-call
      // initialization race-free, and the object (a worker-less pool, so
      // its destructor joins nothing) is destroyed at exit — TSan- and
      // LeakSanitizer-clean, unlike the previous intentional `new` leak.
      // ParallelForStatus guarantees the reported error is always the one
      // from the lowest-indexed failing partition, regardless of
      // scheduling.
      static ThreadPool serial_pool(-1);
      Status loop_status = ParallelForStatus(
          0, num_partitions,
          [&](size_t p, size_t) { return process_partition(p, serial_pool); },
          pool, /*morsel_size=*/1);
      if (!loop_status.ok()) return loop_status;
    } else {
      // Few (or large) partitions: evaluate sequentially with intra-
      // partition parallelism.
      for (size_t p = 0; p < num_partitions; ++p) {
        Status status = process_partition(p, pool);
        if (!status.ok()) return status;
      }
    }
    total_partitions += num_partitions;
    obs::Add(obs::Counter::kExecutorPartitions, num_partitions);
    return Status::OK();
  };

  for (size_t g = 0; g < num_groups; ++g) {
    Status status = evaluate_group(g);
    if (!status.ok()) return status;
  }
  // A cancellation that landed mid-evaluation leaves partially-written
  // result columns; surface it before anyone can observe them.
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  if (profile != nullptr) {
    // The dispatch timers above charged tree construction and Algorithm-1
    // preprocessing (permutation / code / prevIdcs construction) to kProbe
    // as well; both recorded their own time into kTreeBuild / kPreprocess,
    // so remove them from kProbe to make the phases disjoint.
    profile->AddPhaseSeconds(
        obs::ProfilePhase::kProbe,
        -profile->phase_seconds(obs::ProfilePhase::kTreeBuild) -
            profile->phase_seconds(obs::ProfilePhase::kPreprocess));
    profile->SetRows(n);
    profile->SetPartitions(total_partitions);
    profile->SetEngine(EngineName(options.engine));
    profile->SetMemoryLimitBytes(memory_limit);
    profile->SetPeakReservedBytes(budget.peak_reserved_bytes());
    profile->SetTotalSeconds(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - run_start)
                                 .count());
    profile->CaptureCountersSince(counters_before);
  }

  return results;
}

StatusOr<std::vector<Column>> EvaluateWindowFunctions(
    const Table& table, const WindowSpec& spec,
    std::span<const WindowFunctionCall> calls,
    const WindowExecutorOptions& options, ThreadPool& pool) {
  WindowSpecGroup group;
  group.spec = &spec;
  group.calls = calls;
  StatusOr<std::vector<std::vector<Column>>> result =
      EvaluateWindowSpecGroups(
          table, std::span<const WindowSpecGroup>(&group, 1), options, pool);
  if (!result.ok()) return result.status();
  return std::move((*result)[0]);
}

StatusOr<Column> EvaluateWindowFunction(const Table& table,
                                        const WindowSpec& spec,
                                        const WindowFunctionCall& call,
                                        const WindowExecutorOptions& options,
                                        ThreadPool& pool) {
  StatusOr<std::vector<Column>> result = EvaluateWindowFunctions(
      table, spec, std::span<const WindowFunctionCall>(&call, 1), options,
      pool);
  if (!result.ok()) return result.status();
  return std::move((*result)[0]);
}

}  // namespace hwf
