#include "window/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "common/stop_token.h"
#include "mem/external_sort.h"
#include "mem/memory_budget.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/parallel_sort.h"
#include "window/evaluator.h"
#include "window/functions/common.h"
#include "window/frame.h"

namespace hwf {

namespace {

/// Compares two rows on one key, including NULL placement.
int CompareRowsByKey(const Table& table, size_t row_a, size_t row_b,
                     const SortKey& key) {
  const Column& column = table.column(key.column);
  const bool null_a = column.IsNull(row_a);
  const bool null_b = column.IsNull(row_b);
  if (null_a || null_b) {
    if (null_a && null_b) return 0;
    const int null_cmp = null_a ? -1 : 1;    // NULL first...
    return key.nulls_first ? null_cmp : -null_cmp;
  }
  int cmp = column.Compare(row_a, row_b);
  return key.ascending ? cmp : -cmp;
}

DataType ArgType(const Table& table, const WindowFunctionCall& call) {
  HWF_CHECK(call.argument.has_value());
  return table.column(*call.argument).type();
}

DataType ResultType(const Table& table, const WindowFunctionCall& call) {
  switch (call.kind) {
    case WindowFunctionKind::kCountStar:
    case WindowFunctionKind::kCount:
    case WindowFunctionKind::kCountDistinct:
    case WindowFunctionKind::kRank:
    case WindowFunctionKind::kDenseRank:
    case WindowFunctionKind::kRowNumber:
    case WindowFunctionKind::kNtile:
      return DataType::kInt64;
    case WindowFunctionKind::kAvg:
    case WindowFunctionKind::kAvgDistinct:
    case WindowFunctionKind::kPercentRank:
    case WindowFunctionKind::kCumeDist:
    case WindowFunctionKind::kPercentileCont:
      return DataType::kDouble;
    case WindowFunctionKind::kSum:
    case WindowFunctionKind::kSumDistinct:
    case WindowFunctionKind::kMin:
    case WindowFunctionKind::kMax:
    case WindowFunctionKind::kMinDistinct:
    case WindowFunctionKind::kMaxDistinct:
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kMedian:
    case WindowFunctionKind::kFirstValue:
    case WindowFunctionKind::kLastValue:
    case WindowFunctionKind::kNthValue:
    case WindowFunctionKind::kLead:
    case WindowFunctionKind::kLag:
    case WindowFunctionKind::kMode:
      return ArgType(table, call);
  }
  return DataType::kInt64;
}

Status DispatchMergeSortTree(const PartitionView& view,
                             const WindowFunctionCall& call, Column* out) {
  switch (call.kind) {
    case WindowFunctionKind::kCountStar:
    case WindowFunctionKind::kCount:
    case WindowFunctionKind::kSum:
    case WindowFunctionKind::kMin:
    case WindowFunctionKind::kMax:
    case WindowFunctionKind::kAvg:
      return EvalDistributive(view, call, out);
    case WindowFunctionKind::kCountDistinct:
    case WindowFunctionKind::kSumDistinct:
    case WindowFunctionKind::kAvgDistinct:
    case WindowFunctionKind::kMinDistinct:
    case WindowFunctionKind::kMaxDistinct:
      return EvalDistinctAggregate(view, call, out);
    case WindowFunctionKind::kRank:
    case WindowFunctionKind::kRowNumber:
    case WindowFunctionKind::kPercentRank:
    case WindowFunctionKind::kCumeDist:
    case WindowFunctionKind::kNtile:
      return EvalRankFunction(view, call, out);
    case WindowFunctionKind::kDenseRank:
      return EvalDenseRank(view, call, out);
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont:
    case WindowFunctionKind::kMedian:
      return EvalPercentile(view, call, out);
    case WindowFunctionKind::kFirstValue:
    case WindowFunctionKind::kLastValue:
    case WindowFunctionKind::kNthValue:
      return EvalValueFunction(view, call, out);
    case WindowFunctionKind::kLead:
    case WindowFunctionKind::kLag:
      return EvalLeadLag(view, call, out);
    case WindowFunctionKind::kMode:
      return Status::NotImplemented(
          "mode is not covered by the merge sort tree (paper §1); use "
          "WindowEngine::kIncremental or kNaive");
  }
  return Status::Internal("unhandled window function kind");
}

Status DispatchEngine(const PartitionView& view,
                      const WindowFunctionCall& call, Column* out) {
  switch (view.options->engine) {
    case WindowEngine::kMergeSortTree:
      return DispatchMergeSortTree(view, call, out);
    case WindowEngine::kNaive:
      return EvalNaive(view, call, out);
    case WindowEngine::kIncremental:
      return EvalIncremental(view, call, out);
    case WindowEngine::kOrderStatisticTree:
      return EvalOrderStatisticTree(view, call, out);
  }
  return Status::Internal("unhandled window engine");
}

/// The shared, input-order-independent result of the executor's phases 1–2:
/// the globally sorted row permutation and the partition boundaries. This is
/// the coarsest cacheable artifact — identical for every query against the
/// same table version with the same PARTITION BY / ORDER BY.
struct SortArtifact {
  std::vector<size_t> sorted;
  std::vector<size_t> partition_starts;

  size_t ApproxBytes() const {
    return (sorted.capacity() + partition_starts.capacity()) * sizeof(size_t);
  }
};

/// Serializes the sort specification (partition keys + order keys with
/// direction and NULL placement) into a cache-key fragment.
std::string SortSpecKey(const WindowSpec& spec) {
  std::string key = "pb";
  for (size_t column : spec.partition_by) {
    key += ':';
    key += std::to_string(column);
  }
  key += "|ob";
  for (const SortKey& sort_key : spec.order_by) {
    key += ':';
    key += std::to_string(sort_key.column);
    key += sort_key.ascending ? 'a' : 'd';
    key += sort_key.nulls_first ? 'f' : 'l';
  }
  return key;
}

const char* EngineName(WindowEngine engine) {
  switch (engine) {
    case WindowEngine::kMergeSortTree:
      return "merge_sort_tree";
    case WindowEngine::kNaive:
      return "naive";
    case WindowEngine::kIncremental:
      return "incremental";
    case WindowEngine::kOrderStatisticTree:
      return "order_statistic_tree";
  }
  return "unknown";
}

}  // namespace

int CompareRowsBy(const Table& table, size_t row_a, size_t row_b,
                  std::span<const SortKey> keys) {
  for (const SortKey& key : keys) {
    int cmp = CompareRowsByKey(table, row_a, row_b, key);
    if (cmp != 0) return cmp;
  }
  return 0;
}

std::vector<SortKey> EffectiveOrder(const WindowSpec& spec,
                                    const WindowFunctionCall& call) {
  if (!call.order_by.empty()) return call.order_by;
  switch (call.kind) {
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont:
    case WindowFunctionKind::kMedian:
      // Percentiles order by their argument by default.
      if (call.argument.has_value()) {
        return {SortKey{*call.argument, true, false}};
      }
      break;
    default:
      break;
  }
  return spec.order_by;
}

IndexRemap BuildCallRemap(const PartitionView& view,
                          const WindowFunctionCall& call,
                          bool drop_null_args) {
  const bool has_filter = call.filter.has_value();
  const bool drop_nulls = drop_null_args && call.argument.has_value();
  if (!has_filter && !drop_nulls) {
    return IndexRemap::Identity(view.size());
  }
  std::vector<uint8_t> include(view.size(), 1);
  const Column* filter_col = has_filter ? &view.col(*call.filter) : nullptr;
  const Column* arg_col = drop_nulls ? &view.col(*call.argument) : nullptr;
  for (size_t i = 0; i < view.size(); ++i) {
    const size_t row = view.rows[i];
    if (filter_col != nullptr &&
        (filter_col->IsNull(row) || filter_col->GetInt64(row) == 0)) {
      include[i] = 0;
    } else if (arg_col != nullptr && arg_col->IsNull(row)) {
      include[i] = 0;
    }
  }
  return IndexRemap::Build(include);
}

size_t MapRangesToFiltered(const FrameRanges& frames, const IndexRemap& remap,
                           RowRange* out) {
  size_t count = 0;
  for (size_t r = 0; r < frames.count(); ++r) {
    const size_t begin = remap.ToFiltered(frames[r].begin);
    const size_t end = remap.ToFiltered(frames[r].end);
    if (begin < end) out[count++] = RowRange{begin, end};
  }
  return count;
}

std::string CallCacheKey(const PartitionView& view,
                         const WindowFunctionCall& call, bool drop_null_args) {
  const bool drop_nulls = drop_null_args && call.argument.has_value();
  std::string key;
  key += drop_nulls ? "|dn:" + std::to_string(*call.argument) : "|dn-";
  key += call.filter.has_value() ? "|f:" + std::to_string(*call.filter)
                                 : "|f-";
  key += "|eo";
  for (const SortKey& sort_key : EffectiveOrder(*view.spec, call)) {
    key += ':';
    key += std::to_string(sort_key.column);
    key += sort_key.ascending ? 'a' : 'd';
    key += sort_key.nulls_first ? 'f' : 'l';
  }
  const MergeSortTreeOptions& tree = view.options->tree;
  key += "|t:" + std::to_string(tree.fanout) + ":" +
         std::to_string(tree.sampling) + ":" + (tree.use_cascading ? "c" : "n");
  return key;
}

StatusOr<std::vector<Column>> EvaluateWindowFunctions(
    const Table& table, const WindowSpec& spec,
    std::span<const WindowFunctionCall> calls,
    const WindowExecutorOptions& options, ThreadPool& pool) {
  Status status = ValidateWindowSpec(table, spec);
  if (!status.ok()) return status;
  for (const WindowFunctionCall& call : calls) {
    status = ValidateWindowCall(table, spec, call);
    if (!status.ok()) return status;
  }

  const size_t n = table.num_rows();
  HWF_TRACE_SCOPE_ARG("window.execute", "rows", n);

  // A local copy of the options lets the executor route the attached
  // profile into every tree build (MergeSortTreeOptions::profile) without
  // mutating the caller's struct.
  WindowExecutorOptions exec_options = options;
  obs::ExecutionProfile* profile = options.profile;
  exec_options.tree.profile = profile;
  obs::CounterSnapshot counters_before;
  std::chrono::steady_clock::time_point run_start;
  if (profile != nullptr) {
    profile->Clear();
    counters_before = obs::SnapshotCounters();
    run_start = std::chrono::steady_clock::now();
  }

  // Memory governance: one budget per execution. The limit comes from the
  // options, or — when unset — from HWF_TEST_MEMORY_LIMIT, the hook the
  // forced-spill CI job uses to route the whole regular test suite through
  // the spill paths. Budgets that cannot cover even the irreducible working
  // set (the sorted row permutation, which has no out-of-core
  // representation) fail fast with a clean Status instead of thrashing.
  // Above that floor the executor always completes: sort scratch and tree
  // levels degrade to spill files, and the remaining unsheddable
  // allocations (per-partition frame descriptors) use forced reservations
  // whose overshoot is visible in mem.forced_over_budget_bytes.
  size_t memory_limit = options.memory_limit_bytes;
  if (memory_limit == 0) {
    if (const char* env = std::getenv("HWF_TEST_MEMORY_LIMIT")) {
      size_t parsed = 0;
      if (mem::ParseMemorySize(env, &parsed)) memory_limit = parsed;
    }
  }
  mem::MemoryBudget budget(memory_limit);
  const mem::MemoryContext mem_ctx{&budget,
                                   /*allow_spill=*/memory_limit > 0, profile};
  if (memory_limit > 0) {
    const size_t irreducible = n * sizeof(size_t) + (size_t{64} << 10);
    if (irreducible > memory_limit) {
      return Status::ResourceExhausted(
          "memory limit of " + std::to_string(memory_limit) +
          " bytes cannot cover the irreducible working set of " +
          std::to_string(irreducible) + " bytes for " + std::to_string(n) +
          " rows");
    }
  }
  exec_options.tree.mem = mem_ctx;

  // Cross-query caching is engaged only for unbudgeted executions: cached
  // artifacts outlive the query, so they must neither be charged to nor
  // spill through the per-query budget. Cached tree builds therefore get an
  // empty MemoryContext (no budget pointer to dangle).
  const bool cache_enabled = options.tree_cache != nullptr &&
                             !options.cache_key.empty() && memory_limit == 0;
  if (cache_enabled) exec_options.tree.mem = {};
  const std::string spec_key = SortSpecKey(spec);
  const std::string sort_key =
      cache_enabled ? options.cache_key + "|sort|" + spec_key : std::string();

  // Streaming-ingest coordinates (see WindowExecutorOptions): content-keyed
  // partition artifacts whenever the service supplies a content identity,
  // and sort-artifact delta merging when appended rows are present and the
  // base state's artifact can be found in the cache.
  const bool content_keys =
      cache_enabled && !options.content_cache_key.empty();
  const bool delta_merge_possible =
      cache_enabled && !options.delta_base_key.empty() &&
      options.delta_base_rows > 0 && options.delta_base_rows < n;
  const std::string base_sort_key =
      delta_merge_possible ? options.delta_base_key + "|sort|" + spec_key
                           : std::string();

  // The canonical total order of the global sort: (partition keys, order
  // keys, row id). Shared by the cold sort, the delta merge and the
  // partition-boundary scans so every path agrees bit-for-bit.
  std::vector<SortKey> partition_keys;
  partition_keys.reserve(spec.partition_by.size());
  for (size_t column : spec.partition_by) {
    partition_keys.push_back(SortKey{column, true, true});
  }
  auto row_less = [&](size_t a, size_t b) {
    int cmp = CompareRowsBy(table, a, b, partition_keys);
    if (cmp != 0) return cmp < 0;
    cmp = CompareRowsBy(table, a, b, spec.order_by);
    if (cmp != 0) return cmp < 0;
    return a < b;
  };
  auto compute_partition_starts = [&](const std::vector<size_t>& sorted_rows) {
    std::vector<size_t> starts;
    starts.push_back(0);
    for (size_t i = 1; i < sorted_rows.size(); ++i) {
      if (CompareRowsBy(table, sorted_rows[i - 1], sorted_rows[i],
                        partition_keys) != 0) {
        starts.push_back(i);
      }
    }
    starts.push_back(sorted_rows.size());
    return starts;
  };

  // Phases 1–2, as a builder so the cache can skip them entirely on a hit.
  auto build_sort_artifact = [&]() -> StatusOr<SortArtifact> {
    SortArtifact artifact;
    // Phase 1: one global sort by (partition keys, order keys, row id).
    // Partition keys use a fixed canonical order; the row-id tiebreak makes
    // the sort a deterministic total order (and thereby reproducible across
    // thread counts).
    mem::MemoryReservation sorted_bytes;
    sorted_bytes.ForceReserve(&budget, n * sizeof(size_t));
    std::vector<size_t>& sorted = artifact.sorted;
    sorted.resize(n);
    // The sort and partition phases are bracketed with an explicitly-reset
    // optional timer so the straight-line code needs no extra nesting.
    std::optional<obs::ScopedPhaseTimer> phase_timer;
    phase_timer.emplace(profile, obs::ProfilePhase::kSort);
    for (size_t i = 0; i < n; ++i) sorted[i] = i;
    // Fast path standing in for Hyper's generated comparators (§5.4): with
    // no partitioning and a single numeric ORDER BY key, sort fixed-width
    // encoded records instead of dispatching a generic comparator per
    // comparison.
    const bool encoded_sort =
        spec.partition_by.empty() && spec.order_by.size() == 1 &&
        table.column(spec.order_by[0].column).type() != DataType::kString;
    if (encoded_sort) {
      const SortKey& key = spec.order_by[0];
      const Column& column = table.column(key.column);
      const bool is_int = column.type() == DataType::kInt64;
      struct SortRec {
        uint8_t null_rank;
        uint64_t key;
        uint64_t row;
        bool operator<(const SortRec& other) const {
          if (null_rank != other.null_rank) return null_rank < other.null_rank;
          if (key != other.key) return key < other.key;
          return row < other.row;
        }
        // The comparison above is exactly this word order, which opts the
        // record into the offset-value-coded merge kernel. (Enum, not a
        // static member: local classes cannot have those until C++23.)
        enum : size_t { kOvcWords = 3 };
        uint64_t OvcWord(size_t w) const {
          return w == 0 ? null_rank : w == 1 ? key : row;
        }
      };
      mem::MemoryReservation records_bytes;
      records_bytes.ForceReserve(&budget, n * sizeof(SortRec));
      std::vector<SortRec> records(n);
      ParallelFor(
          0, n,
          [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              if (column.IsNull(i)) {
                records[i] = {static_cast<uint8_t>(key.nulls_first ? 0 : 2), 0,
                              i};
              } else {
                records[i] = {
                    1,
                    is_int ? internal_window::EncodeInt64Key(column.GetInt64(i),
                                                             key.ascending)
                           : internal_window::EncodeDoubleKey(
                                 column.GetDouble(i), key.ascending),
                    i};
              }
            }
          },
          pool, options.morsel_size);
      Status sort_status = mem::SortWithBudget(
          records, [](const SortRec& a, const SortRec& b) { return a < b; },
          pool, mem_ctx, options.morsel_size, PartitionScheme::kThreeWay,
          exec_options.tree.use_ovc);
      if (!sort_status.ok()) return sort_status;
      ParallelFor(
          0, n,
          [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              sorted[i] = static_cast<size_t>(records[i].row);
            }
          },
          pool, options.morsel_size);
    } else {
      Status sort_status = mem::SortWithBudget(
          sorted,
          [&](size_t a, size_t b) {
            int cmp = CompareRowsBy(table, a, b, partition_keys);
            if (cmp != 0) return cmp < 0;
            cmp = CompareRowsBy(table, a, b, spec.order_by);
            if (cmp != 0) return cmp < 0;
            return a < b;
          },
          pool, mem_ctx, options.morsel_size);
      if (!sort_status.ok()) return sort_status;
    }

    // Phase 2: partition boundaries (equal partition keys).
    phase_timer.reset();
    phase_timer.emplace(profile, obs::ProfilePhase::kPartition);
    std::vector<size_t>& partition_starts = artifact.partition_starts;
    partition_starts.push_back(0);
    for (size_t i = 1; i < n; ++i) {
      if (CompareRowsBy(table, sorted[i - 1], sorted[i], partition_keys) != 0) {
        partition_starts.push_back(i);
      }
    }
    partition_starts.push_back(n);
    phase_timer.reset();
    if (Status stop = CheckStop(); !stop.ok()) return stop;
    return artifact;
  };

  // The streaming-ingest increment around the cold builder. With appended
  // rows present and the base state's artifact cached, the combined order
  // is recovered without re-sorting the base: sort the delta ids (all >
  // base ids), then stably merge — the row-id tiebreak makes the global
  // sort a unique total order, so merging sorted subsets reproduces the
  // cold result exactly, in O(d log d) comparisons plus one O(n) sweep.
  // On a cold build in delta mode, the base-only artifact is derived and
  // cached as a side effect so the *next* append can take the merge path
  // (self-healing after cache eviction or a cold server start).
  auto build_or_merge_sort_artifact = [&]() -> StatusOr<SortArtifact> {
    if (delta_merge_possible) {
      if (std::shared_ptr<const SortArtifact> base =
              options.tree_cache->Get<SortArtifact>(base_sort_key)) {
        obs::ScopedPhaseTimer timer(profile, obs::ProfilePhase::kDeltaMerge);
        SortArtifact artifact;
        const size_t base_n = options.delta_base_rows;
        std::vector<size_t> delta(n - base_n);
        for (size_t i = 0; i < delta.size(); ++i) delta[i] = base_n + i;
        std::sort(delta.begin(), delta.end(), row_less);
        artifact.sorted.resize(n);
        std::merge(base->sorted.begin(), base->sorted.end(), delta.begin(),
                   delta.end(), artifact.sorted.begin(), row_less);
        artifact.partition_starts = compute_partition_starts(artifact.sorted);
        obs::Add(obs::Counter::kIngestDeltaMerges);
        if (Status stop = CheckStop(); !stop.ok()) return stop;
        return artifact;
      }
    }
    StatusOr<SortArtifact> built = build_sort_artifact();
    if (!built.ok() || !delta_merge_possible) return built;
    obs::ScopedPhaseTimer timer(profile, obs::ProfilePhase::kDeltaMerge);
    SortArtifact base;
    base.sorted.reserve(options.delta_base_rows);
    for (size_t row : built->sorted) {
      if (row < options.delta_base_rows) base.sorted.push_back(row);
    }
    base.partition_starts = compute_partition_starts(base.sorted);
    const size_t base_bytes = base.ApproxBytes();
    options.tree_cache->Put<SortArtifact>(
        base_sort_key,
        {std::make_shared<const SortArtifact>(std::move(base)), base_bytes});
    return built;
  };

  std::shared_ptr<const SortArtifact> sort_artifact;
  if (cache_enabled) {
    StatusOr<std::shared_ptr<const SortArtifact>> artifact_or =
        options.tree_cache->GetOrBuild<SortArtifact>(
            sort_key,
            [&]() -> StatusOr<mst::TreeCache::Built<SortArtifact>> {
              StatusOr<SortArtifact> built = build_or_merge_sort_artifact();
              if (!built.ok()) return built.status();
              const size_t bytes = built->ApproxBytes();
              return mst::TreeCache::Built<SortArtifact>{
                  std::make_shared<const SortArtifact>(std::move(*built)),
                  bytes};
            });
    if (!artifact_or.ok()) return artifact_or.status();
    sort_artifact = std::move(*artifact_or);
  } else {
    StatusOr<SortArtifact> built = build_sort_artifact();
    if (!built.ok()) return built.status();
    sort_artifact = std::make_shared<const SortArtifact>(std::move(*built));
  }
  const std::vector<size_t>& sorted = sort_artifact->sorted;
  const std::vector<size_t>& partition_starts = sort_artifact->partition_starts;

  // Result columns, all NULL until written.
  std::vector<Column> results;
  results.reserve(calls.size());
  for (const WindowFunctionCall& call : calls) {
    results.emplace_back(ResultType(table, call), n);
  }

  const FrameSpec& frame = spec.frame;
  const bool needs_peers =
      frame.exclusion == FrameExclusion::kGroup ||
      frame.exclusion == FrameExclusion::kTies ||
      frame.mode == FrameMode::kGroups ||
      (frame.mode == FrameMode::kRange &&
       frame.begin.kind != FrameBoundKind::kUnboundedPreceding) ||
      (frame.mode == FrameMode::kRange &&
       frame.end.kind != FrameBoundKind::kUnboundedFollowing);
  const bool needs_range_keys =
      frame.mode == FrameMode::kRange &&
      (frame.begin.kind == FrameBoundKind::kPreceding ||
       frame.begin.kind == FrameBoundKind::kFollowing ||
       frame.end.kind == FrameBoundKind::kPreceding ||
       frame.end.kind == FrameBoundKind::kFollowing);

  // Phase 3: per partition — frame resolution, then function evaluation.
  auto process_partition = [&](size_t p, ThreadPool& part_pool) -> Status {
    if (Status stop = CheckStop(); !stop.ok()) return stop;
    const size_t part_begin = partition_starts[p];
    const size_t part_end = partition_starts[p + 1];
    const size_t part_n = part_end - part_begin;
    std::span<const size_t> rows(sorted.data() + part_begin, part_n);

    // Everything up to the resolved frames is frame-resolution work (peer
    // groups, range keys, offsets, the resolver sweep).
    std::optional<obs::ScopedPhaseTimer> part_timer;
    part_timer.emplace(profile, obs::ProfilePhase::kFrameResolve);

    FrameResolver::Inputs inputs;
    inputs.n = part_n;
    inputs.frame = frame;

    if (needs_peers) {
      inputs.peer_start.resize(part_n);
      inputs.peer_end.resize(part_n);
      inputs.group_index.resize(part_n);
      size_t group_begin = 0;
      size_t group = 0;
      for (size_t i = 1; i <= part_n; ++i) {
        const bool boundary =
            i == part_n ||
            CompareRowsBy(table, rows[i - 1], rows[i], spec.order_by) != 0;
        if (boundary) {
          inputs.group_starts.push_back(group_begin);
          for (size_t j = group_begin; j < i; ++j) {
            inputs.peer_start[j] = group_begin;
            inputs.peer_end[j] = i;
            inputs.group_index[j] = group;
          }
          group_begin = i;
          ++group;
        }
      }
      inputs.group_starts.push_back(part_n);  // Sentinel.
    }

    if (needs_range_keys) {
      const SortKey& key = spec.order_by[0];
      const Column& column = table.column(key.column);
      inputs.ascending = key.ascending;
      inputs.range_keys.resize(part_n);
      inputs.range_key_valid.resize(part_n);
      size_t num_nulls = 0;
      for (size_t i = 0; i < part_n; ++i) {
        const size_t row = rows[i];
        if (column.IsNull(row)) {
          inputs.range_keys[i] = 0;
          inputs.range_key_valid[i] = 0;
          ++num_nulls;
        } else {
          inputs.range_keys[i] = column.GetNumeric(row);
          inputs.range_key_valid[i] = 1;
        }
      }
      if (key.nulls_first) {
        inputs.nonnull_begin = num_nulls;
        inputs.nonnull_end = part_n;
      } else {
        inputs.nonnull_begin = 0;
        inputs.nonnull_end = part_n - num_nulls;
      }
    }

    auto load_offsets = [&](const FrameBound& bound,
                            std::vector<int64_t>* ints,
                            std::vector<double>* doubles) {
      if (!bound.offset_column.has_value()) return;
      if (bound.kind != FrameBoundKind::kPreceding &&
          bound.kind != FrameBoundKind::kFollowing) {
        return;
      }
      const Column& column = table.column(*bound.offset_column);
      if (frame.mode == FrameMode::kRange) {
        doubles->resize(part_n);
        for (size_t i = 0; i < part_n; ++i) {
          (*doubles)[i] =
              column.IsNull(rows[i]) ? 0.0 : column.GetNumeric(rows[i]);
        }
      } else {
        ints->resize(part_n);
        for (size_t i = 0; i < part_n; ++i) {
          (*ints)[i] = column.IsNull(rows[i])
                           ? 0
                           : static_cast<int64_t>(
                                 std::llround(column.GetNumeric(rows[i])));
        }
      }
    };
    load_offsets(frame.begin, &inputs.begin_offsets,
                 &inputs.begin_offsets_numeric);
    load_offsets(frame.end, &inputs.end_offsets, &inputs.end_offsets_numeric);

    FrameResolver resolver(std::move(inputs));
    mem::MemoryReservation frames_bytes;
    frames_bytes.ForceReserve(&budget, part_n * sizeof(FrameRanges));
    std::vector<FrameRanges> frames(part_n);
    ParallelFor(
        0, part_n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) frames[i] = resolver.Resolve(i);
        },
        part_pool, options.morsel_size);

    PartitionView view;
    view.table = &table;
    view.spec = &spec;
    view.rows = rows;
    view.frames = frames;
    view.options = &exec_options;
    view.pool = &part_pool;
    PartitionDelta part_delta;
    if (cache_enabled) {
      view.cache = options.tree_cache;
      if (content_keys && part_n > 0) {
        // Content-addressed: (epoch, gen) fixes every row's values, and the
        // (first sorted id, count, last sorted id) coordinates pin down the
        // exact member set — two states of the same content generation whose
        // partition shares first id and count hold *identical* row sets
        // (appends only ever extend a partition), so re-hitting an entry
        // across appends or compactions is provably exact.
        view.cache_prefix = options.content_cache_key + "|" + spec_key + "|p" +
                            std::to_string(rows[0]) + "." +
                            std::to_string(part_n) + "." +
                            std::to_string(rows[part_n - 1]);
      } else {
        view.cache_prefix = sort_key + "|p" + std::to_string(part_begin) +
                            "-" + std::to_string(part_end);
      }
      if (content_keys && options.delta_base_rows > 0 && part_n > 0) {
        // Partition-local delta census for the merged two-tree probe path:
        // which rows are fresh, and under which key the pre-append base
        // subset's tree would have been cached.
        size_t delta_count = 0;
        size_t base_count = 0;
        size_t first_base = 0;
        size_t last_base = 0;
        for (size_t i = 0; i < part_n; ++i) {
          if (rows[i] >= options.delta_base_rows) {
            ++delta_count;
          } else {
            if (base_count == 0) first_base = rows[i];
            last_base = rows[i];
            ++base_count;
          }
        }
        if (delta_count > 0 && base_count > 0) {
          part_delta.base_rows = options.delta_base_rows;
          part_delta.delta_in_partition = delta_count;
          part_delta.main_prefix =
              options.content_cache_key + "|" + spec_key + "|p" +
              std::to_string(first_base) + "." + std::to_string(base_count) +
              "." + std::to_string(last_base);
          view.delta = &part_delta;
        }
      }
    }

    // The dispatch interval covers preprocessing, tree builds AND probing;
    // the preprocessing and tree-build shares are recorded separately by
    // the evaluators / builds themselves and subtracted from kProbe once at
    // the end of the execution, keeping the phases disjoint without extra
    // clock reads inside the dispatch.
    part_timer.reset();
    part_timer.emplace(profile, obs::ProfilePhase::kProbe);
    for (size_t c = 0; c < calls.size(); ++c) {
      Status call_status = DispatchEngine(view, calls[c], &results[c]);
      if (!call_status.ok()) return call_status;
    }
    return Status::OK();
  };

  const size_t num_partitions = partition_starts.size() - 1;
  size_t largest_partition = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    largest_partition = std::max(largest_partition,
                                 partition_starts[p + 1] - partition_starts[p]);
  }
  if (num_partitions > 1 && largest_partition <= options.morsel_size &&
      pool.num_workers() > 0) {
    // Many small partitions: parallelize ACROSS partitions (Leis et al.
    // [27]); each partition is one task evaluated serially inside. A
    // worker-less pool makes the inner ParallelFor calls run inline.
    // Meyers singleton: C++11 magic statics make the first-call
    // initialization race-free, and the object (a worker-less pool, so its
    // destructor joins nothing) is destroyed at exit — TSan- and
    // LeakSanitizer-clean, unlike the previous intentional `new` leak.
    // ParallelForStatus guarantees the reported error is always the one
    // from the lowest-indexed failing partition, regardless of scheduling.
    static ThreadPool serial_pool(-1);
    Status loop_status = ParallelForStatus(
        0, num_partitions,
        [&](size_t p, size_t) { return process_partition(p, serial_pool); },
        pool, /*morsel_size=*/1);
    if (!loop_status.ok()) return loop_status;
  } else {
    // Few (or large) partitions: evaluate sequentially with intra-
    // partition parallelism.
    for (size_t p = 0; p < num_partitions; ++p) {
      status = process_partition(p, pool);
      if (!status.ok()) return status;
    }
  }
  // A cancellation that landed mid-evaluation leaves partially-written
  // result columns; surface it before anyone can observe them.
  if (Status stop = CheckStop(); !stop.ok()) return stop;

  obs::Add(obs::Counter::kExecutorPartitions, num_partitions);
  if (profile != nullptr) {
    // The dispatch timers above charged tree construction and Algorithm-1
    // preprocessing (permutation / code / prevIdcs construction) to kProbe
    // as well; both recorded their own time into kTreeBuild / kPreprocess,
    // so remove them from kProbe to make the phases disjoint.
    profile->AddPhaseSeconds(
        obs::ProfilePhase::kProbe,
        -profile->phase_seconds(obs::ProfilePhase::kTreeBuild) -
            profile->phase_seconds(obs::ProfilePhase::kPreprocess));
    profile->SetRows(n);
    profile->SetPartitions(num_partitions);
    profile->SetEngine(EngineName(options.engine));
    profile->SetMemoryLimitBytes(memory_limit);
    profile->SetPeakReservedBytes(budget.peak_reserved_bytes());
    profile->SetTotalSeconds(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - run_start)
                                 .count());
    profile->CaptureCountersSince(counters_before);
  }

  return results;
}

StatusOr<Column> EvaluateWindowFunction(const Table& table,
                                        const WindowSpec& spec,
                                        const WindowFunctionCall& call,
                                        const WindowExecutorOptions& options,
                                        ThreadPool& pool) {
  StatusOr<std::vector<Column>> result = EvaluateWindowFunctions(
      table, spec, std::span<const WindowFunctionCall>(&call, 1), options,
      pool);
  if (!result.ok()) return result.status();
  return std::move((*result)[0]);
}

}  // namespace hwf
