#ifndef HWF_WINDOW_BUILDER_H_
#define HWF_WINDOW_BUILDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "window/executor.h"
#include "window/spec.h"

namespace hwf {

/// Fluent, name-based construction and execution of window queries.
///
///   StatusOr<Table> result =
///       WindowQueryBuilder(trades)
///           .PartitionBy("region")
///           .OrderBy("day")
///           .RowsBetween(FrameBound::Preceding(6), FrameBound::CurrentRow())
///           .Median("price", "weekly_median")
///           .Rank("price_rank").FunctionOrderByDesc("price")
///           .Run();
///
/// The OVER clause methods (PartitionBy/OrderBy/frames/Exclude) apply to
/// the shared window; each function method appends one call, and the
/// modifier methods (FunctionOrderBy, Filter, IgnoreNulls, Param,
/// Fraction) configure the most recently added call. Run() evaluates all
/// calls with one shared partitioning/sorting pass and returns the input
/// table plus one result column per call.
///
/// Column-name resolution errors are captured and reported by Run(), so
/// chains stay unconditional.
class WindowQueryBuilder {
 public:
  explicit WindowQueryBuilder(const Table& table) : table_(&table) {}

  // -- OVER clause ----------------------------------------------------------

  WindowQueryBuilder& PartitionBy(const std::string& column);
  WindowQueryBuilder& OrderBy(const std::string& column, bool ascending = true,
                              bool nulls_first = false);
  WindowQueryBuilder& OrderByDesc(const std::string& column) {
    return OrderBy(column, /*ascending=*/false);
  }
  WindowQueryBuilder& RowsBetween(FrameBound begin, FrameBound end);
  WindowQueryBuilder& RangeBetween(FrameBound begin, FrameBound end);
  WindowQueryBuilder& GroupsBetween(FrameBound begin, FrameBound end);
  WindowQueryBuilder& Exclude(FrameExclusion exclusion);

  // -- Window function calls ------------------------------------------------

  /// Generic form; `argument` may be empty for argument-less functions.
  WindowQueryBuilder& Call(WindowFunctionKind kind, const std::string& argument,
                           const std::string& as);

  WindowQueryBuilder& CountStar(const std::string& as) {
    return Call(WindowFunctionKind::kCountStar, "", as);
  }
  WindowQueryBuilder& Count(const std::string& argument,
                            const std::string& as) {
    return Call(WindowFunctionKind::kCount, argument, as);
  }
  WindowQueryBuilder& Sum(const std::string& argument, const std::string& as) {
    return Call(WindowFunctionKind::kSum, argument, as);
  }
  WindowQueryBuilder& Min(const std::string& argument, const std::string& as) {
    return Call(WindowFunctionKind::kMin, argument, as);
  }
  WindowQueryBuilder& Max(const std::string& argument, const std::string& as) {
    return Call(WindowFunctionKind::kMax, argument, as);
  }
  WindowQueryBuilder& Avg(const std::string& argument, const std::string& as) {
    return Call(WindowFunctionKind::kAvg, argument, as);
  }
  WindowQueryBuilder& CountDistinct(const std::string& argument,
                                    const std::string& as) {
    return Call(WindowFunctionKind::kCountDistinct, argument, as);
  }
  WindowQueryBuilder& SumDistinct(const std::string& argument,
                                  const std::string& as) {
    return Call(WindowFunctionKind::kSumDistinct, argument, as);
  }
  WindowQueryBuilder& Rank(const std::string& as) {
    return Call(WindowFunctionKind::kRank, "", as);
  }
  WindowQueryBuilder& DenseRank(const std::string& as) {
    return Call(WindowFunctionKind::kDenseRank, "", as);
  }
  WindowQueryBuilder& RowNumber(const std::string& as) {
    return Call(WindowFunctionKind::kRowNumber, "", as);
  }
  WindowQueryBuilder& CumeDist(const std::string& as) {
    return Call(WindowFunctionKind::kCumeDist, "", as);
  }
  WindowQueryBuilder& Ntile(int64_t buckets, const std::string& as) {
    Call(WindowFunctionKind::kNtile, "", as);
    return Param(buckets);
  }
  WindowQueryBuilder& Median(const std::string& argument,
                             const std::string& as) {
    return Call(WindowFunctionKind::kMedian, argument, as);
  }
  WindowQueryBuilder& PercentileDisc(double fraction,
                                     const std::string& argument,
                                     const std::string& as) {
    Call(WindowFunctionKind::kPercentileDisc, argument, as);
    return Fraction(fraction);
  }
  WindowQueryBuilder& PercentileCont(double fraction,
                                     const std::string& argument,
                                     const std::string& as) {
    Call(WindowFunctionKind::kPercentileCont, argument, as);
    return Fraction(fraction);
  }
  WindowQueryBuilder& FirstValue(const std::string& argument,
                                 const std::string& as) {
    return Call(WindowFunctionKind::kFirstValue, argument, as);
  }
  WindowQueryBuilder& LastValue(const std::string& argument,
                                const std::string& as) {
    return Call(WindowFunctionKind::kLastValue, argument, as);
  }
  WindowQueryBuilder& NthValue(int64_t n, const std::string& argument,
                               const std::string& as) {
    Call(WindowFunctionKind::kNthValue, argument, as);
    return Param(n);
  }
  WindowQueryBuilder& Lead(const std::string& argument, int64_t offset,
                           const std::string& as) {
    Call(WindowFunctionKind::kLead, argument, as);
    return Param(offset);
  }
  WindowQueryBuilder& Lag(const std::string& argument, int64_t offset,
                          const std::string& as) {
    Call(WindowFunctionKind::kLag, argument, as);
    return Param(offset);
  }
  WindowQueryBuilder& Mode(const std::string& argument,
                           const std::string& as) {
    return Call(WindowFunctionKind::kMode, argument, as);
  }

  // -- Modifiers for the most recently added call ----------------------------

  WindowQueryBuilder& FunctionOrderBy(const std::string& column,
                                      bool ascending = true,
                                      bool nulls_first = false);
  WindowQueryBuilder& FunctionOrderByDesc(const std::string& column) {
    return FunctionOrderBy(column, /*ascending=*/false);
  }
  WindowQueryBuilder& Filter(const std::string& column);
  WindowQueryBuilder& IgnoreNulls();
  WindowQueryBuilder& Param(int64_t param);
  WindowQueryBuilder& Fraction(double fraction);

  // -- Execution --------------------------------------------------------------

  /// The assembled spec and calls (for advanced use); fails on any name
  /// resolution error recorded during building.
  StatusOr<WindowSpec> spec() const;
  StatusOr<std::vector<WindowFunctionCall>> calls() const;

  /// Evaluates all calls and returns the input table plus one result
  /// column per call (named by each call's `as`).
  StatusOr<Table> Run(const WindowExecutorOptions& options = {},
                      ThreadPool& pool = ThreadPool::Default()) const;

  /// Evaluates all calls and returns only the result columns.
  StatusOr<std::vector<Column>> RunColumns(
      const WindowExecutorOptions& options = {},
      ThreadPool& pool = ThreadPool::Default()) const;

 private:
  std::optional<size_t> Resolve(const std::string& column, const char* what);
  void RecordError(const Status& status);

  const Table* table_;
  WindowSpec spec_;
  std::vector<WindowFunctionCall> calls_;
  std::vector<std::string> result_names_;
  Status error_;
};

}  // namespace hwf

#endif  // HWF_WINDOW_BUILDER_H_
