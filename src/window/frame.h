#ifndef HWF_WINDOW_FRAME_H_
#define HWF_WINDOW_FRAME_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "window/spec.h"

namespace hwf {

/// A half-open range of positions within a partition's sort order.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;
  bool empty() const { return begin >= end; }
  size_t size() const { return empty() ? 0 : end - begin; }
};

/// The materialized frame of one row: up to three disjoint ascending
/// position ranges (§4.7 — exclusion clauses punch at most two holes).
class FrameRanges {
 public:
  /// Appends a range; empty ranges are dropped. Ranges must be added in
  /// ascending, non-overlapping order.
  void Add(size_t begin, size_t end) {
    if (begin >= end) return;
    HWF_DCHECK(count_ == 0 || ranges_[count_ - 1].end <= begin);
    HWF_DCHECK(count_ < kMaxRanges);
    ranges_[count_++] = RowRange{begin, end};
  }

  size_t count() const { return count_; }
  const RowRange& operator[](size_t i) const {
    HWF_DCHECK(i < count_);
    return ranges_[i];
  }

  /// Total number of rows across all ranges.
  size_t TotalRows() const {
    size_t total = 0;
    for (size_t i = 0; i < count_; ++i) total += ranges_[i].size();
    return total;
  }

  /// Whether `pos` lies inside one of the ranges.
  bool Contains(size_t pos) const {
    for (size_t i = 0; i < count_; ++i) {
      if (pos >= ranges_[i].begin && pos < ranges_[i].end) return true;
    }
    return false;
  }

  static constexpr size_t kMaxRanges = 3;

 private:
  std::array<RowRange, kMaxRanges> ranges_;
  size_t count_ = 0;
};

/// Resolves per-row window frames within one partition.
///
/// The executor fills in the per-position context (sorted order keys for
/// RANGE, peer groups, evaluated per-row offsets) and then queries
/// Resolve(i) for every position. All inputs are in partition sort order.
class FrameResolver {
 public:
  struct Inputs {
    size_t n = 0;
    FrameSpec frame;

    /// RANGE support: the single numeric ORDER BY key per position, plus
    /// the region [nonnull_begin, nonnull_end) holding the non-NULL keys
    /// (NULLs sort to one end per the key's nulls_first flag).
    std::vector<double> range_keys;
    std::vector<uint8_t> range_key_valid;
    bool ascending = true;
    size_t nonnull_begin = 0;
    size_t nonnull_end = 0;

    /// Peer groups (equal ORDER BY values). Required for RANGE CURRENT ROW
    /// bounds, GROUPS mode, and GROUP/TIES exclusion; otherwise may stay
    /// empty.
    std::vector<size_t> peer_start;
    std::vector<size_t> peer_end;
    std::vector<size_t> group_index;   // per position
    std::vector<size_t> group_starts;  // per group; sentinel n at the end

    /// Per-row offsets already evaluated per position (empty = use the
    /// constant offset from the FrameSpec). Integral for ROWS/GROUPS,
    /// numeric for RANGE.
    std::vector<int64_t> begin_offsets;
    std::vector<int64_t> end_offsets;
    std::vector<double> begin_offsets_numeric;
    std::vector<double> end_offsets_numeric;
  };

  explicit FrameResolver(Inputs inputs);

  /// The frame of the row at partition position i, as disjoint ranges with
  /// exclusion applied.
  FrameRanges Resolve(size_t i) const;

  /// The frame before exclusion: a single clamped [begin, end) range.
  RowRange ResolveBase(size_t i) const;

 private:
  int64_t BeginOffset(size_t i) const;
  int64_t EndOffset(size_t i) const;
  double BeginOffsetNumeric(size_t i) const;
  double EndOffsetNumeric(size_t i) const;

  /// First non-null position whose key is >= bound (ascending) or
  /// <= bound (descending).
  size_t LowerBoundKey(double bound) const;
  /// One past the last non-null position whose key is <= bound (ascending)
  /// or >= bound (descending).
  size_t UpperBoundKey(double bound) const;

  Inputs in_;
};

}  // namespace hwf

#endif  // HWF_WINDOW_FRAME_H_
