#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace {

/// The "naive" engine: every frame is re-evaluated from scratch (Wesley &
/// Xu's naive algorithm, §5.5). O(frame size) — or O(s log s) for
/// order-based functions — per output row, embarrassingly parallel.
///
/// This is also the library's test oracle: it shares only the partitioning
/// / sorting / frame-resolution phases with the merge sort tree engine and
/// re-derives every aggregate with the simplest possible code.
struct NaiveEvaluator {
  const PartitionView& view;
  const WindowFunctionCall& call;
  Column* out;
  std::vector<SortKey> order;
  const Column* arg = nullptr;
  const Column* filter = nullptr;
  std::vector<double> value_buffer;  // Reused across rows.

  NaiveEvaluator(const PartitionView& v, const WindowFunctionCall& c,
                 Column* o)
      : view(v), call(c), out(o), order(EffectiveOrder(*v.spec, c)) {
    if (call.argument.has_value()) arg = &view.col(*call.argument);
    if (call.filter.has_value()) filter = &view.col(*call.filter);
  }

  bool PassesFilter(size_t pos) const {
    if (filter == nullptr) return true;
    const size_t row = view.rows[pos];
    return !filter->IsNull(row) && filter->GetInt64(row) != 0;
  }

  bool ArgIsNull(size_t pos) const {
    return arg != nullptr && arg->IsNull(view.rows[pos]);
  }

  /// Frame positions passing the FILTER clause (and, when requested,
  /// having a non-NULL argument), ascending.
  std::vector<size_t> GatherFrame(size_t i, bool drop_null_args) const {
    std::vector<size_t> positions;
    const FrameRanges& frames = view.frames[i];
    for (size_t r = 0; r < frames.count(); ++r) {
      for (size_t pos = frames[r].begin; pos < frames[r].end; ++pos) {
        if (!PassesFilter(pos)) continue;
        if (drop_null_args && ArgIsNull(pos)) continue;
        positions.push_back(pos);
      }
    }
    return positions;
  }

  bool OrderLess(size_t a, size_t b) const {
    return CompareRowsBy(*view.table, view.rows[a], view.rows[b], order) < 0;
  }
  bool OrderEqual(size_t a, size_t b) const {
    return CompareRowsBy(*view.table, view.rows[a], view.rows[b], order) == 0;
  }
  /// Strict total order: order keys, then position.
  bool TotalLess(size_t a, size_t b) const {
    const int cmp =
        CompareRowsBy(*view.table, view.rows[a], view.rows[b], order);
    if (cmp != 0) return cmp < 0;
    return a < b;
  }

  void WriteArg(size_t row, size_t selected_pos) const {
    const size_t selected = view.rows[selected_pos];
    if (arg->IsNull(selected)) {
      out->SetNull(row);
      return;
    }
    switch (out->type()) {
      case DataType::kInt64:
        out->SetInt64(row, arg->GetInt64(selected));
        break;
      case DataType::kDouble:
        out->SetDouble(row, arg->GetNumeric(selected));
        break;
      case DataType::kString:
        out->SetString(row, arg->GetString(selected));
        break;
    }
  }

  void WriteNumeric(size_t row, double value) const {
    if (out->type() == DataType::kInt64) {
      out->SetInt64(row, static_cast<int64_t>(value));
    } else {
      out->SetDouble(row, value);
    }
  }

  void EvalRow(size_t i) {
    const size_t row = view.rows[i];
    switch (call.kind) {
      case WindowFunctionKind::kCountStar: {
        out->SetInt64(row, static_cast<int64_t>(
                               GatherFrame(i, /*drop_null_args=*/false).size()));
        break;
      }
      case WindowFunctionKind::kCount: {
        out->SetInt64(row, static_cast<int64_t>(
                               GatherFrame(i, /*drop_null_args=*/true).size()));
        break;
      }
      case WindowFunctionKind::kSum:
      case WindowFunctionKind::kMin:
      case WindowFunctionKind::kMax:
      case WindowFunctionKind::kAvg: {
        const std::vector<size_t> frame = GatherFrame(i, true);
        if (frame.empty()) {
          out->SetNull(row);
          break;
        }
        if (call.kind == WindowFunctionKind::kSum &&
            out->type() == DataType::kInt64) {
          int64_t sum = 0;
          for (size_t pos : frame) sum += arg->GetInt64(view.rows[pos]);
          out->SetInt64(row, sum);
          break;
        }
        double acc = arg->GetNumeric(view.rows[frame[0]]);
        for (size_t f = 1; f < frame.size(); ++f) {
          const double v = arg->GetNumeric(view.rows[frame[f]]);
          switch (call.kind) {
            case WindowFunctionKind::kSum:
            case WindowFunctionKind::kAvg:
              acc += v;
              break;
            case WindowFunctionKind::kMin:
              acc = std::min(acc, v);
              break;
            case WindowFunctionKind::kMax:
              acc = std::max(acc, v);
              break;
            default:
              break;
          }
        }
        if (call.kind == WindowFunctionKind::kAvg) {
          acc /= static_cast<double>(frame.size());
        }
        WriteNumeric(row, acc);
        break;
      }
      case WindowFunctionKind::kCountDistinct: {
        const std::vector<size_t> frame = GatherFrame(i, true);
        std::unordered_set<uint64_t> seen;
        for (size_t pos : frame) seen.insert(arg->Hash(view.rows[pos]));
        out->SetInt64(row, static_cast<int64_t>(seen.size()));
        break;
      }
      case WindowFunctionKind::kSumDistinct:
      case WindowFunctionKind::kAvgDistinct:
      case WindowFunctionKind::kMinDistinct:
      case WindowFunctionKind::kMaxDistinct: {
        const std::vector<size_t> frame = GatherFrame(i, true);
        std::unordered_set<uint64_t> seen;
        bool first = true;
        double acc = 0;
        int64_t int_acc = 0;
        int64_t count = 0;
        const bool int_sum = call.kind == WindowFunctionKind::kSumDistinct &&
                             out->type() == DataType::kInt64;
        for (size_t pos : frame) {
          const size_t r = view.rows[pos];
          if (!seen.insert(arg->Hash(r)).second) continue;
          ++count;
          const double v = arg->GetNumeric(r);
          if (int_sum) int_acc += arg->GetInt64(r);
          if (first) {
            acc = v;
            first = false;
            continue;
          }
          switch (call.kind) {
            case WindowFunctionKind::kSumDistinct:
            case WindowFunctionKind::kAvgDistinct:
              acc += v;
              break;
            case WindowFunctionKind::kMinDistinct:
              acc = std::min(acc, v);
              break;
            case WindowFunctionKind::kMaxDistinct:
              acc = std::max(acc, v);
              break;
            default:
              break;
          }
        }
        if (count == 0) {
          out->SetNull(row);
        } else if (int_sum) {
          out->SetInt64(row, int_acc);
        } else if (call.kind == WindowFunctionKind::kAvgDistinct) {
          out->SetDouble(row, acc / static_cast<double>(count));
        } else {
          WriteNumeric(row, acc);
        }
        break;
      }
      case WindowFunctionKind::kRank:
      case WindowFunctionKind::kRowNumber:
      case WindowFunctionKind::kPercentRank:
      case WindowFunctionKind::kCumeDist: {
        const std::vector<size_t> frame = GatherFrame(i, false);
        size_t less_count = 0;
        size_t leq_count = 0;
        size_t total_less = 0;  // For ROW_NUMBER: strict total order.
        for (size_t pos : frame) {
          if (OrderLess(pos, i)) {
            ++less_count;
            ++leq_count;
            ++total_less;
          } else if (OrderEqual(pos, i)) {
            ++leq_count;
            if (pos < i) ++total_less;
          }
        }
        const size_t n_frame = frame.size();
        switch (call.kind) {
          case WindowFunctionKind::kRank:
            out->SetInt64(row, static_cast<int64_t>(less_count) + 1);
            break;
          case WindowFunctionKind::kRowNumber:
            out->SetInt64(row, static_cast<int64_t>(total_less) + 1);
            break;
          case WindowFunctionKind::kPercentRank:
            if (n_frame <= 1) {
              out->SetDouble(row, 0.0);
            } else {
              out->SetDouble(row, static_cast<double>(less_count) /
                                      static_cast<double>(n_frame - 1));
            }
            break;
          case WindowFunctionKind::kCumeDist:
            if (n_frame == 0) {
              out->SetNull(row);
            } else {
              out->SetDouble(row, static_cast<double>(leq_count) /
                                      static_cast<double>(n_frame));
            }
            break;
          default:
            break;
        }
        break;
      }
      case WindowFunctionKind::kNtile: {
        std::vector<size_t> frame = GatherFrame(i, false);
        const size_t n_frame = frame.size();
        if (n_frame == 0) {
          out->SetNull(row);
          break;
        }
        size_t rn = 0;
        for (size_t pos : frame) {
          if (TotalLess(pos, i)) ++rn;
        }
        if (rn >= n_frame) rn = n_frame - 1;
        const size_t buckets = static_cast<size_t>(call.param);
        int64_t tile;
        if (buckets >= n_frame) {
          tile = static_cast<int64_t>(rn) + 1;
        } else {
          const size_t big = n_frame % buckets;
          const size_t small_size = n_frame / buckets;
          const size_t big_total = big * (small_size + 1);
          tile = rn < big_total
                     ? static_cast<int64_t>(rn / (small_size + 1)) + 1
                     : static_cast<int64_t>(big + (rn - big_total) /
                                                      small_size) +
                           1;
        }
        out->SetInt64(row, tile);
        break;
      }
      case WindowFunctionKind::kDenseRank: {
        std::vector<size_t> smaller;
        for (size_t pos : GatherFrame(i, false)) {
          if (OrderLess(pos, i)) smaller.push_back(pos);
        }
        std::sort(smaller.begin(), smaller.end(),
                  [&](size_t a, size_t b) { return TotalLess(a, b); });
        size_t distinct = 0;
        for (size_t s = 0; s < smaller.size(); ++s) {
          if (s == 0 || !OrderEqual(smaller[s - 1], smaller[s])) ++distinct;
        }
        out->SetInt64(row, static_cast<int64_t>(distinct) + 1);
        break;
      }
      case WindowFunctionKind::kPercentileDisc:
      case WindowFunctionKind::kPercentileCont:
      case WindowFunctionKind::kMedian: {
        const double fraction = call.kind == WindowFunctionKind::kMedian
                                    ? 0.5
                                    : call.fraction;
        // Fast path for the standard case (selection ordered by the
        // argument itself): gather raw values and use nth_element — this
        // is what an engine's naive evaluation actually does, and it is
        // the configuration all benchmarks measure.
        const bool standard_order =
            call.order_by.empty() ||
            (call.order_by.size() == 1 &&
             call.order_by[0].column == *call.argument &&
             call.order_by[0].ascending);
        if (standard_order) {
          value_buffer.clear();
          const FrameRanges& frames = view.frames[i];
          for (size_t r = 0; r < frames.count(); ++r) {
            for (size_t pos = frames[r].begin; pos < frames[r].end; ++pos) {
              if (!PassesFilter(pos) || ArgIsNull(pos)) continue;
              value_buffer.push_back(arg->GetNumeric(view.rows[pos]));
            }
          }
          const size_t total = value_buffer.size();
          if (total == 0) {
            out->SetNull(row);
            break;
          }
          if (call.kind == WindowFunctionKind::kPercentileCont) {
            const double pos = fraction * static_cast<double>(total - 1);
            const size_t lo = static_cast<size_t>(std::floor(pos));
            const size_t hi = static_cast<size_t>(std::ceil(pos));
            std::nth_element(value_buffer.begin(), value_buffer.begin() + lo,
                             value_buffer.end());
            const double lo_val = value_buffer[lo];
            double hi_val = lo_val;
            if (hi != lo) {
              hi_val = *std::min_element(value_buffer.begin() + hi,
                                         value_buffer.end());
            }
            const double t = pos - static_cast<double>(lo);
            out->SetDouble(row, lo_val + t * (hi_val - lo_val));
          } else {
            double pos = std::ceil(fraction * static_cast<double>(total)) - 1;
            size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
            if (idx >= total) idx = total - 1;
            std::nth_element(value_buffer.begin(), value_buffer.begin() + idx,
                             value_buffer.end());
            WriteNumeric(row, value_buffer[idx]);
          }
          break;
        }
        // General path: arbitrary selection order.
        std::vector<size_t> frame = GatherFrame(i, true);
        if (frame.empty()) {
          out->SetNull(row);
          break;
        }
        std::sort(frame.begin(), frame.end(),
                  [&](size_t a, size_t b) { return TotalLess(a, b); });
        const size_t total = frame.size();
        if (call.kind == WindowFunctionKind::kPercentileCont) {
          const double pos = fraction * static_cast<double>(total - 1);
          const size_t lo = static_cast<size_t>(std::floor(pos));
          const size_t hi = static_cast<size_t>(std::ceil(pos));
          const double lo_val = arg->GetNumeric(view.rows[frame[lo]]);
          const double hi_val = arg->GetNumeric(view.rows[frame[hi]]);
          const double t = pos - static_cast<double>(lo);
          out->SetDouble(row, lo_val + t * (hi_val - lo_val));
        } else {
          double pos = std::ceil(fraction * static_cast<double>(total)) - 1;
          size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
          if (idx >= total) idx = total - 1;
          WriteArg(row, frame[idx]);
        }
        break;
      }
      case WindowFunctionKind::kFirstValue:
      case WindowFunctionKind::kLastValue:
      case WindowFunctionKind::kNthValue: {
        std::vector<size_t> frame = GatherFrame(i, call.ignore_nulls);
        if (frame.empty()) {
          out->SetNull(row);
          break;
        }
        std::sort(frame.begin(), frame.end(),
                  [&](size_t a, size_t b) { return TotalLess(a, b); });
        size_t idx = 0;
        if (call.kind == WindowFunctionKind::kLastValue) {
          idx = frame.size() - 1;
        } else if (call.kind == WindowFunctionKind::kNthValue) {
          idx = static_cast<size_t>(call.param - 1);
          if (idx >= frame.size()) {
            out->SetNull(row);
            break;
          }
        }
        WriteArg(row, frame[idx]);
        break;
      }
      case WindowFunctionKind::kMode: {
        const std::vector<size_t> frame = GatherFrame(i, true);
        if (frame.empty()) {
          out->SetNull(row);
          break;
        }
        // tiekey -> (count, representative position). Equal values share a
        // tiekey; ties between values break toward the smallest tiekey
        // (i.e., the smallest numeric value).
        std::unordered_map<uint64_t, std::pair<size_t, size_t>> counts;
        for (size_t pos : frame) {
          const uint64_t tiekey =
              internal_window::ModeTieKey(*arg, view.rows[pos]);
          auto [it, inserted] = counts.try_emplace(tiekey, 0, pos);
          ++it->second.first;
        }
        size_t best_count = 0;
        uint64_t best_key = 0;
        size_t best_pos = 0;
        for (const auto& [tiekey, entry] : counts) {
          if (entry.first > best_count ||
              (entry.first == best_count && tiekey < best_key)) {
            best_count = entry.first;
            best_key = tiekey;
            best_pos = entry.second;
          }
        }
        WriteArg(row, best_pos);
        break;
      }
      case WindowFunctionKind::kLead:
      case WindowFunctionKind::kLag: {
        if (!PassesFilter(i) || (call.ignore_nulls && ArgIsNull(i))) {
          out->SetNull(row);
          break;
        }
        std::vector<size_t> frame = GatherFrame(i, call.ignore_nulls);
        if (frame.empty()) {
          out->SetNull(row);
          break;
        }
        std::sort(frame.begin(), frame.end(),
                  [&](size_t a, size_t b) { return TotalLess(a, b); });
        size_t before = 0;
        for (size_t pos : frame) {
          if (TotalLess(pos, i)) ++before;
        }
        const int64_t target =
            call.kind == WindowFunctionKind::kLead
                ? static_cast<int64_t>(before) + call.param
                : static_cast<int64_t>(before) - call.param;
        if (target < 0 || target >= static_cast<int64_t>(frame.size())) {
          out->SetNull(row);
          break;
        }
        WriteArg(row, frame[static_cast<size_t>(target)]);
        break;
      }
    }
  }
};

}  // namespace

Status EvalNaive(const PartitionView& view, const WindowFunctionCall& call,
                 Column* out) {
  HWF_TRACE_SCOPE_ARG("baseline.naive", "rows", view.size());
  ParallelFor(
      0, view.size(),
      [&](size_t lo, size_t hi) {
        NaiveEvaluator evaluator(view, call, out);
        for (size_t i = lo; i < hi; ++i) evaluator.EvalRow(i);
      },
      *view.pool, view.options->morsel_size);
  return Status::OK();
}

}  // namespace hwf
